"""Unified distributed-SpMM engine: registry, checks, dispatch, capture.

Before this module existed, every caller (the distributed GCN, the trainer,
the benchmark harness, the CLI) hard-wired itself to individual functions
in :mod:`~repro.core.spmm_1d` / :mod:`~repro.core.spmm_15d` /
:mod:`~repro.core.spmm_2d` and to the concrete simulator class.  The
engine collapses that duplication into one seam:

* an **algorithm registry** keyed by
  ``{"1d", "1.5d", "2d"} x {"oblivious", "sparsity_aware"}`` — the
  algorithm modules self-register via :func:`register_spmm`, and future
  variants (2.5D, 3D, ...) plug in the same way;
* **common operand-compatibility checks** (:func:`check_block_operands`,
  :func:`check_grid_operands`, :func:`check_grid2d_operands`) shared by
  all algorithm implementations;
* **dispatch** (:func:`spmm`, :class:`SpmmEngine`) that works with any
  :class:`~repro.comm.base.Communicator` backend — simulated or real;
* **compiled execution** (:func:`compile`, :class:`CompiledSpmm`): the
  plan/execute split.  Compiling a variant against one matrix and one
  dense operand shape precomputes every piece of per-call metadata the
  sparsity-aware exchanges need (packed NnzCols gather indices, compacted
  CSR blocks, broadcast / all-to-allv / replication-group schedules) and
  preallocates dtype-aware workspaces (output accumulators, pack/unpack
  staging buffers), so calling the compiled operator once per epoch does
  no metadata derivation and no workspace allocation on the hot path.
  GCN training is the motivating use: the graph is static, so one plan
  per (matrix, layer shape) amortises over hundreds of epochs;
* **common timing/volume capture** (:class:`SpmmReport`,
  :meth:`SpmmEngine.run_with_report`) so benchmarks measure every variant
  the same way.

Typical use::

    from repro.comm import make_communicator
    from repro.core.engine import DenseSpec, SpmmEngine

    comm = make_communicator(p, backend="threaded")
    engine = SpmmEngine(comm, algorithm="1d", sparsity_aware=True)
    z = engine.run(matrix, dense)          # Z = M H (compile + run once)

    op = engine.compile(matrix, DenseSpec(width=16))
    for _ in range(epochs):
        z = op(dense)                       # plan reuse, zero re-setup

Compiled results are views into the operator's reused workspaces: they
stay valid until the operator's next call (see ``docs/performance.md``
for the lifetime rules).  The compiled path executes the exact same
communication and accounting sequence as the uncompiled one, so results,
event logs and simulated timings are bitwise identical — the conformance
suite asserts this for every (variant x backend) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..comm.base import Communicator
from ..obs.tracer import TRACE

__all__ = [
    "CompiledOpCache", "CompiledSpmm", "DenseSpec", "MODES", "SpmmEngine",
    "SpmmReport", "SpmmVariant", "available_spmm_variants",
    "check_block_operands", "check_grid_operands", "check_grid2d_operands",
    "compile", "get_spmm", "mode_name", "register_spmm",
    "register_spmm_compiler", "spmm",
]

#: The two communication modes the paper compares.
MODES = ("oblivious", "sparsity_aware")

#: The three distribution families with registered implementations.
ALGORITHM_FAMILIES = ("1d", "1.5d", "2d")


def _check_pipeline_depth(depth) -> int:
    """Validate a pipeline depth (positive integer; 1 = synchronous)."""
    depth = int(depth)
    if depth < 1:
        raise ValueError(f"pipeline_depth must be >= 1, got {depth}")
    return depth


# ----------------------------------------------------------------------
# Common operand-compatibility checks
# ----------------------------------------------------------------------
def check_block_operands(matrix, dense, comm: Communicator) -> None:
    """1D: operands share a block-row distribution, one block per rank."""
    if matrix.dist != dense.dist:
        raise ValueError("sparse and dense operands use different distributions")
    if matrix.nblocks != comm.nranks:
        raise ValueError(
            f"matrix has {matrix.nblocks} block rows but the communicator "
            f"has {comm.nranks} ranks")


def check_grid_operands(matrix, dense, grid, comm: Communicator) -> None:
    """1.5D: block rows match the grid rows, ranks match the grid size."""
    if matrix.dist != dense.dist:
        raise ValueError("sparse and dense operands use different distributions")
    if matrix.nblocks != grid.nrows:
        raise ValueError(
            f"matrix has {matrix.nblocks} block rows but the grid has "
            f"{grid.nrows} rows")
    if comm.nranks != grid.nranks:
        raise ValueError(
            f"communicator has {comm.nranks} ranks but the grid expects "
            f"{grid.nranks}")


def check_grid2d_operands(matrix, h, grid, comm: Communicator) -> None:
    """2D: the block grid matches the process grid and the dense operand."""
    if matrix.row_dist.nblocks != grid.nrows or \
            matrix.col_dist.nblocks != grid.ncols:
        raise ValueError("matrix block grid does not match the process grid")
    if h.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"dense operand has {h.shape[0]} rows, expected {matrix.shape[1]}")
    if comm.nranks != grid.nranks:
        raise ValueError(
            f"communicator has {comm.nranks} ranks but the grid expects "
            f"{grid.nranks}")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpmmVariant:
    """One registered (algorithm family, sparsity mode) implementation."""

    algorithm: str
    mode: str
    fn: Callable
    needs_grid: bool
    description: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.algorithm, self.mode)


_REGISTRY: Dict[Tuple[str, str], SpmmVariant] = {}

#: Per-variant compiler callables: (algorithm, mode) ->
#: ``fn(matrix, spec, comm, grid, **categories) -> CompiledSpmm``.
_COMPILERS: Dict[Tuple[str, str], Callable] = {}


def mode_name(sparsity_aware: bool) -> str:
    """Registry mode key for a boolean sparsity flag."""
    return "sparsity_aware" if sparsity_aware else "oblivious"


def register_spmm(algorithm: str, mode: str, needs_grid: bool = False,
                  description: str = "") -> Callable:
    """Decorator: register an SpMM kernel under ``(algorithm, mode)``.

    Kernels without a grid are called as ``fn(matrix, dense, comm, **kw)``;
    grid kernels as ``fn(matrix, dense, grid, comm, **kw)``.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")

    def decorate(fn: Callable) -> Callable:
        key = (algorithm, mode)
        if key in _REGISTRY:
            raise ValueError(f"SpMM variant {key} is already registered")
        _REGISTRY[key] = SpmmVariant(algorithm=algorithm, mode=mode, fn=fn,
                                     needs_grid=needs_grid,
                                     description=description or
                                     (fn.__doc__ or "").strip().split("\n")[0])
        return fn

    return decorate


def _ensure_algorithms_loaded() -> None:
    """Import the built-in algorithm modules (they self-register)."""
    from . import spmm_1d, spmm_15d, spmm_2d  # noqa: F401


def available_spmm_variants() -> List[Tuple[str, str]]:
    """All registered (algorithm, mode) keys, sorted."""
    _ensure_algorithms_loaded()
    return sorted(_REGISTRY)


def get_spmm(algorithm: str, sparsity_aware: bool = True,
             mode: Optional[str] = None) -> SpmmVariant:
    """Look up a registered variant (``mode`` overrides ``sparsity_aware``)."""
    _ensure_algorithms_loaded()
    key = (algorithm, mode if mode is not None else mode_name(sparsity_aware))
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"no SpMM variant registered for {key}; "
            f"available: {sorted(_REGISTRY)}") from None


def register_spmm_compiler(algorithm: str, mode: str) -> Callable:
    """Decorator: register the compiler of an SpMM variant.

    The decorated callable is invoked as
    ``fn(variant, matrix, spec, comm, grid=..., **categories)`` and must
    return a :class:`CompiledSpmm`.  Variants without a registered
    compiler fall back to a generic (plan-free) wrapper in
    :func:`compile`.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")

    def decorate(fn: Callable) -> Callable:
        key = (algorithm, mode)
        if key in _COMPILERS:
            raise ValueError(f"an SpMM compiler for {key} is already "
                             f"registered")
        _COMPILERS[key] = fn
        return fn

    return decorate


# ----------------------------------------------------------------------
# Compiled execution (plan once, run every epoch)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DenseSpec:
    """Shape/precision contract of the dense operand a plan is built for.

    ``width`` is the feature dimension ``f`` of ``H``; ``dtype`` the
    element type every workspace and exchanged payload will use
    (``float32`` halves the exchanged volume of bandwidth-bound runs).
    """

    width: int
    dtype: "np.dtype" = field(default=np.dtype(np.float64))

    def __post_init__(self) -> None:
        object.__setattr__(self, "width", int(self.width))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.width < 0:
            raise ValueError("dense width must be non-negative")
        if self.dtype.kind != "f":
            raise ValueError(
                f"dense dtype must be a floating type, got {self.dtype}")

    @classmethod
    def like(cls, dense) -> "DenseSpec":
        """The spec describing an existing dense operand (distributed or
        plain ndarray)."""
        if isinstance(dense, np.ndarray):
            return cls(width=dense.shape[1], dtype=dense.dtype)
        return cls(width=dense.width, dtype=getattr(dense, "dtype",
                                                    np.dtype(np.float64)))


class CompiledSpmm:
    """A persistent execution plan for one (matrix, dense-spec, variant).

    Subclasses (one per registered variant) precompute all exchange
    metadata at construction and own the reused workspaces; ``__call__``
    runs one SpMM with the same communication/accounting sequence as the
    uncompiled kernel.

    Workspace lifetime rule: the returned result aliases the operator's
    output workspace and is only valid until the **next** call of the same
    operator.  Callers that need to keep a result across calls must copy
    it (`result.to_global()` / ``np.array(..., copy=True)``).

    ``pipeline_depth`` controls overlapped execution of staged variants:
    ``1`` (the default) runs every exchange synchronously; ``d > 1``
    double-buffers the stage schedule, prefetching up to ``d - 1`` stages'
    operands with nonblocking collectives while the current stage's local
    multiply runs.  Results are bit-identical to the synchronous path —
    the stage order, reduction order and workspaces are unchanged; only
    *when* the exchanges are waited on differs.  Variants with a single
    un-staged exchange (1D sparsity-aware) accept the knob and ignore it.
    """

    def __init__(self, variant: SpmmVariant, matrix, spec: DenseSpec,
                 comm: Communicator, grid=None,
                 pipeline_depth: int = 1) -> None:
        self.variant = variant
        self.matrix = matrix
        self.spec = spec
        self.comm = comm
        self.grid = grid
        self.pipeline_depth = _check_pipeline_depth(pipeline_depth)
        self.calls = 0

    # Subclasses implement the hot path.
    def _execute(self, dense):  # pragma: no cover - abstract
        raise NotImplementedError

    def _check_dense(self, dense) -> None:
        """Cheap per-call operand validation (no metadata derivation)."""
        if isinstance(dense, np.ndarray):
            if dense.ndim != 2 or dense.shape[1] != self.spec.width:
                raise ValueError(
                    f"compiled for width {self.spec.width}, got operand "
                    f"shape {dense.shape}")
            if dense.dtype != self.spec.dtype:
                raise ValueError(
                    f"compiled for dtype {self.spec.dtype}, got "
                    f"{dense.dtype}")
            return
        if dense.width != self.spec.width:
            raise ValueError(
                f"compiled for width {self.spec.width}, got width "
                f"{dense.width}")
        if getattr(dense, "dtype", self.spec.dtype) != self.spec.dtype:
            raise ValueError(
                f"compiled for dtype {self.spec.dtype}, got {dense.dtype}")
        dist = getattr(self.matrix, "dist", None)
        if dist is not None and dense.dist is not dist \
                and dense.dist != dist:
            raise ValueError(
                "dense operand uses a different distribution than the "
                "compiled matrix")

    def __call__(self, dense):
        """Run ``Z = M H`` on the precomputed plan and reused workspaces."""
        self._check_dense(dense)
        self.calls += 1
        tr = TRACE
        if not tr.enabled:
            return self._execute(dense)
        with tr.span("spmm", cat="spmm",
                     args={"algorithm": self.algorithm, "mode": self.mode,
                           "width": self.spec.width,
                           "pipeline_depth": self.pipeline_depth,
                           "call": self.calls}):
            return self._execute(dense)

    @property
    def algorithm(self) -> str:
        return self.variant.algorithm

    @property
    def mode(self) -> str:
        return self.variant.mode

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(algorithm={self.algorithm!r}, "
                f"mode={self.mode!r}, width={self.spec.width}, "
                f"dtype={self.spec.dtype.name!r}, calls={self.calls})")


class SpecOperandProbe:
    """Distribution/width stand-in for a dense operand.

    Lets the per-variant compilers reuse :func:`check_block_operands` /
    :func:`check_grid_operands` at compile time, when only the
    :class:`DenseSpec` — not an actual dense matrix — is available."""

    def __init__(self, matrix, spec: DenseSpec) -> None:
        self.dist = matrix.dist
        self.width = spec.width


class _FallbackCompiled(CompiledSpmm):
    """Plan-free wrapper for variants without a registered compiler."""

    def __init__(self, variant, matrix, spec, comm, grid=None,
                 pipeline_depth: int = 1, **categories) -> None:
        # The fallback has no stage schedule to pipeline; the knob is
        # validated and recorded, then ignored (synchronous execution).
        super().__init__(variant, matrix, spec, comm, grid=grid,
                         pipeline_depth=pipeline_depth)
        self._categories = categories

    def _execute(self, dense):
        if self.variant.needs_grid:
            return self.variant.fn(self.matrix, dense, self.grid, self.comm,
                                   **self._categories)
        return self.variant.fn(self.matrix, dense, self.comm,
                               **self._categories)


def compile(matrix, dense_spec, comm: Communicator, algorithm: str = "1d",
            sparsity_aware: bool = True, mode: Optional[str] = None,
            grid=None, pipeline_depth: int = 1,
            **categories) -> CompiledSpmm:
    """Build a persistent :class:`CompiledSpmm` for a registered variant.

    ``dense_spec`` is a :class:`DenseSpec` (or a plain ``int`` width,
    meaning float64).  All per-variant exchange metadata is derived here,
    once; the returned operator's ``__call__`` only moves data.  The
    ``**categories`` keyword overrides are fixed at compile time.

    ``pipeline_depth > 1`` enables double-buffered execution: staged
    variants prefetch the next stage's operand with nonblocking
    collectives while computing the current stage (bit-identical results;
    see the :class:`CompiledSpmm` docstring and ``docs/performance.md``).
    """
    variant = get_spmm(algorithm, sparsity_aware=sparsity_aware, mode=mode)
    if variant.needs_grid and grid is None:
        raise ValueError(f"the {variant.algorithm} algorithm requires a "
                         f"process grid")
    if not variant.needs_grid and grid is not None:
        raise ValueError(f"the {variant.algorithm} algorithm does not take "
                         f"a process grid")
    if isinstance(dense_spec, (int, np.integer)):
        dense_spec = DenseSpec(width=int(dense_spec))
    pipeline_depth = _check_pipeline_depth(pipeline_depth)
    compiler = _COMPILERS.get(variant.key)
    if compiler is None:
        return _FallbackCompiled(variant, matrix, dense_spec, comm,
                                 grid=grid, pipeline_depth=pipeline_depth,
                                 **categories)
    return compiler(variant, matrix, dense_spec, comm, grid=grid,
                    pipeline_depth=pipeline_depth, **categories)


class CompiledOpCache:
    """Width-keyed retention of compiled plans for one static matrix.

    Training knows every operand width up front (the layer dims) and
    pre-warms; serving additionally discovers widths at runtime — a
    micro-batch of ``k`` coalesced requests propagates at ``k * f``
    columns — so the cache compiles lazily on first sight of a width and
    retains the plan for the lifetime of the model.  Hits/misses/compiles
    are counted for the obs metrics registry (pre-warming via
    :meth:`warm` is deliberately not counted: the counters describe
    request-driven behaviour).

    The cache is dict-like over widths (``iter`` / ``len`` / ``in`` /
    ``items``) so callers can introspect the retained plans.
    """

    def __init__(self, engine: "SpmmEngine", matrix,
                 dtype=np.float64, pipeline_depth: int = 1) -> None:
        self._engine = engine
        self._matrix = matrix
        self.dtype = np.dtype(dtype)
        self.pipeline_depth = _check_pipeline_depth(pipeline_depth)
        self._plans: Dict[int, CompiledSpmm] = {}
        self.hits = 0
        self.misses = 0

    def _compile(self, width: int) -> CompiledSpmm:
        op = self._engine.compile(
            self._matrix, DenseSpec(width=width, dtype=self.dtype),
            pipeline_depth=self.pipeline_depth)
        self._plans[width] = op
        return op

    def get(self, width: int) -> CompiledSpmm:
        """The retained plan for ``width``, compiling it on first use."""
        width = int(width)
        op = self._plans.get(width)
        if op is not None:
            self.hits += 1
            return op
        self.misses += 1
        return self._compile(width)

    def peek(self, width: int) -> Optional[CompiledSpmm]:
        """The retained plan for ``width`` or ``None`` — never compiles,
        never counts."""
        return self._plans.get(int(width))

    def warm(self, widths) -> None:
        """Compile (uncounted) plans for any widths not yet retained."""
        for width in widths:
            width = int(width)
            if width not in self._plans:
                self._compile(width)

    def stats(self) -> Dict[str, int]:
        """Counters in the shape the serve metrics registry exports."""
        return {"plan_hits": self.hits, "plan_misses": self.misses,
                "plans_retained": len(self._plans)}

    def widths(self) -> List[int]:
        return sorted(self._plans)

    def items(self):
        return self._plans.items()

    def __iter__(self):
        return iter(self._plans)

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, width) -> bool:
        return int(width) in self._plans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledOpCache(widths={self.widths()}, "
                f"dtype={self.dtype.name!r}, hits={self.hits}, "
                f"misses={self.misses})")


# ----------------------------------------------------------------------
# Dispatch + capture
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpmmReport:
    """Timing/volume delta captured around one engine dispatch."""

    algorithm: str
    mode: str
    backend: str
    elapsed_s: float
    comm_bytes: int
    messages: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "mode": self.mode,
            "backend": self.backend,
            "elapsed_s": self.elapsed_s,
            "comm_MB": self.comm_bytes / 1e6,
            "messages": self.messages,
        }


def spmm(matrix, dense, comm: Communicator, algorithm: str = "1d",
         sparsity_aware: bool = True, grid=None, **categories):
    """Dispatch ``Z = M H`` to the registered (algorithm, mode) kernel.

    ``matrix`` / ``dense`` are the family's operand types
    (:class:`~repro.core.dist_matrix.DistSparseMatrix` +
    :class:`~repro.core.dist_matrix.DistDenseMatrix` for 1D/1.5D;
    :class:`~repro.core.spmm_2d.Dist2DSparseMatrix` + a NumPy array for
    2D).  Grid algorithms require the matching ``grid`` object
    (:class:`~repro.core.spmm_15d.ProcessGrid` or
    :class:`~repro.core.spmm_2d.Grid2D`).
    """
    variant = get_spmm(algorithm, sparsity_aware=sparsity_aware)
    if variant.needs_grid:
        if grid is None:
            raise ValueError(
                f"the {variant.algorithm} algorithm requires a process grid")
        return variant.fn(matrix, dense, grid, comm, **categories)
    if grid is not None:
        raise ValueError(
            f"the {variant.algorithm} algorithm does not take a process grid")
    return variant.fn(matrix, dense, comm, **categories)


class SpmmEngine:
    """A communicator-bound dispatcher for one (algorithm, mode) variant.

    The engine is the object the distributed GCN, the trainer and the
    benchmark harness hold instead of concrete kernel functions; swapping
    the algorithm or the communicator backend never touches those layers.
    """

    def __init__(self, comm: Communicator, algorithm: str = "1d",
                 sparsity_aware: bool = True, grid=None) -> None:
        self.comm = comm
        self.variant = get_spmm(algorithm, sparsity_aware=sparsity_aware)
        if self.variant.needs_grid and grid is None:
            raise ValueError(
                f"the {algorithm} algorithm requires a process grid")
        if not self.variant.needs_grid and grid is not None:
            raise ValueError(
                f"the {algorithm} algorithm does not take a process grid")
        self.grid = grid
        self.last_report: Optional[SpmmReport] = None

    @property
    def algorithm(self) -> str:
        return self.variant.algorithm

    @property
    def mode(self) -> str:
        return self.variant.mode

    def run(self, matrix, dense, **categories):
        """Execute ``Z = M H`` on this engine's communicator."""
        if self.variant.needs_grid:
            return self.variant.fn(matrix, dense, self.grid, self.comm,
                                   **categories)
        return self.variant.fn(matrix, dense, self.comm, **categories)

    def compile(self, matrix, dense_spec, pipeline_depth: int = 1,
                **categories) -> CompiledSpmm:
        """Build a persistent plan for this engine's variant/communicator.

        See :func:`compile`; the engine supplies the variant, grid and
        communicator it was constructed with.
        """
        return compile(matrix, dense_spec, self.comm,
                       algorithm=self.algorithm, mode=self.mode,
                       grid=self.grid, pipeline_depth=pipeline_depth,
                       **categories)

    def run_with_report(self, matrix, dense, **categories):
        """Like :meth:`run`, also capturing an :class:`SpmmReport` delta."""
        t0 = self.comm.elapsed()
        bytes0 = self.comm.events.total_bytes()
        msgs0 = self.comm.events.message_count()
        result = self.run(matrix, dense, **categories)
        report = SpmmReport(
            algorithm=self.algorithm,
            mode=self.mode,
            backend=self.comm.backend_name,
            elapsed_s=self.comm.elapsed() - t0,
            comm_bytes=self.comm.events.total_bytes() - bytes0,
            messages=self.comm.events.message_count() - msgs0,
        )
        self.last_report = report
        return result, report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SpmmEngine(algorithm={self.algorithm!r}, mode={self.mode!r}, "
                f"backend={self.comm.backend_name!r}, nranks={self.comm.nranks})")
