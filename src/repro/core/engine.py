"""Unified distributed-SpMM engine: registry, checks, dispatch, capture.

Before this module existed, every caller (the distributed GCN, the trainer,
the benchmark harness, the CLI) hard-wired itself to individual functions
in :mod:`~repro.core.spmm_1d` / :mod:`~repro.core.spmm_15d` /
:mod:`~repro.core.spmm_2d` and to the concrete simulator class.  The
engine collapses that duplication into one seam:

* an **algorithm registry** keyed by
  ``{"1d", "1.5d", "2d"} x {"oblivious", "sparsity_aware"}`` — the
  algorithm modules self-register via :func:`register_spmm`, and future
  variants (2.5D, 3D, ...) plug in the same way;
* **common operand-compatibility checks** (:func:`check_block_operands`,
  :func:`check_grid_operands`, :func:`check_grid2d_operands`) shared by
  all algorithm implementations;
* **dispatch** (:func:`spmm`, :class:`SpmmEngine`) that works with any
  :class:`~repro.comm.base.Communicator` backend — simulated or real;
* **common timing/volume capture** (:class:`SpmmReport`,
  :meth:`SpmmEngine.run_with_report`) so benchmarks measure every variant
  the same way.

Typical use::

    from repro.comm import make_communicator
    from repro.core.engine import SpmmEngine

    comm = make_communicator(p, backend="threaded")
    engine = SpmmEngine(comm, algorithm="1d", sparsity_aware=True)
    z = engine.run(matrix, dense)          # Z = M H
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..comm.base import Communicator

__all__ = [
    "MODES", "SpmmEngine", "SpmmReport", "SpmmVariant",
    "available_spmm_variants", "check_block_operands", "check_grid_operands",
    "check_grid2d_operands", "get_spmm", "mode_name", "register_spmm", "spmm",
]

#: The two communication modes the paper compares.
MODES = ("oblivious", "sparsity_aware")

#: The three distribution families with registered implementations.
ALGORITHM_FAMILIES = ("1d", "1.5d", "2d")


# ----------------------------------------------------------------------
# Common operand-compatibility checks
# ----------------------------------------------------------------------
def check_block_operands(matrix, dense, comm: Communicator) -> None:
    """1D: operands share a block-row distribution, one block per rank."""
    if matrix.dist != dense.dist:
        raise ValueError("sparse and dense operands use different distributions")
    if matrix.nblocks != comm.nranks:
        raise ValueError(
            f"matrix has {matrix.nblocks} block rows but the communicator "
            f"has {comm.nranks} ranks")


def check_grid_operands(matrix, dense, grid, comm: Communicator) -> None:
    """1.5D: block rows match the grid rows, ranks match the grid size."""
    if matrix.dist != dense.dist:
        raise ValueError("sparse and dense operands use different distributions")
    if matrix.nblocks != grid.nrows:
        raise ValueError(
            f"matrix has {matrix.nblocks} block rows but the grid has "
            f"{grid.nrows} rows")
    if comm.nranks != grid.nranks:
        raise ValueError(
            f"communicator has {comm.nranks} ranks but the grid expects "
            f"{grid.nranks}")


def check_grid2d_operands(matrix, h, grid, comm: Communicator) -> None:
    """2D: the block grid matches the process grid and the dense operand."""
    if matrix.row_dist.nblocks != grid.nrows or \
            matrix.col_dist.nblocks != grid.ncols:
        raise ValueError("matrix block grid does not match the process grid")
    if h.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"dense operand has {h.shape[0]} rows, expected {matrix.shape[1]}")
    if comm.nranks != grid.nranks:
        raise ValueError(
            f"communicator has {comm.nranks} ranks but the grid expects "
            f"{grid.nranks}")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpmmVariant:
    """One registered (algorithm family, sparsity mode) implementation."""

    algorithm: str
    mode: str
    fn: Callable
    needs_grid: bool
    description: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.algorithm, self.mode)


_REGISTRY: Dict[Tuple[str, str], SpmmVariant] = {}


def mode_name(sparsity_aware: bool) -> str:
    """Registry mode key for a boolean sparsity flag."""
    return "sparsity_aware" if sparsity_aware else "oblivious"


def register_spmm(algorithm: str, mode: str, needs_grid: bool = False,
                  description: str = "") -> Callable:
    """Decorator: register an SpMM kernel under ``(algorithm, mode)``.

    Kernels without a grid are called as ``fn(matrix, dense, comm, **kw)``;
    grid kernels as ``fn(matrix, dense, grid, comm, **kw)``.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")

    def decorate(fn: Callable) -> Callable:
        key = (algorithm, mode)
        if key in _REGISTRY:
            raise ValueError(f"SpMM variant {key} is already registered")
        _REGISTRY[key] = SpmmVariant(algorithm=algorithm, mode=mode, fn=fn,
                                     needs_grid=needs_grid,
                                     description=description or
                                     (fn.__doc__ or "").strip().split("\n")[0])
        return fn

    return decorate


def _ensure_algorithms_loaded() -> None:
    """Import the built-in algorithm modules (they self-register)."""
    from . import spmm_1d, spmm_15d, spmm_2d  # noqa: F401


def available_spmm_variants() -> List[Tuple[str, str]]:
    """All registered (algorithm, mode) keys, sorted."""
    _ensure_algorithms_loaded()
    return sorted(_REGISTRY)


def get_spmm(algorithm: str, sparsity_aware: bool = True,
             mode: Optional[str] = None) -> SpmmVariant:
    """Look up a registered variant (``mode`` overrides ``sparsity_aware``)."""
    _ensure_algorithms_loaded()
    key = (algorithm, mode if mode is not None else mode_name(sparsity_aware))
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"no SpMM variant registered for {key}; "
            f"available: {sorted(_REGISTRY)}") from None


# ----------------------------------------------------------------------
# Dispatch + capture
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpmmReport:
    """Timing/volume delta captured around one engine dispatch."""

    algorithm: str
    mode: str
    backend: str
    elapsed_s: float
    comm_bytes: int
    messages: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "mode": self.mode,
            "backend": self.backend,
            "elapsed_s": self.elapsed_s,
            "comm_MB": self.comm_bytes / 1e6,
            "messages": self.messages,
        }


def spmm(matrix, dense, comm: Communicator, algorithm: str = "1d",
         sparsity_aware: bool = True, grid=None, **categories):
    """Dispatch ``Z = M H`` to the registered (algorithm, mode) kernel.

    ``matrix`` / ``dense`` are the family's operand types
    (:class:`~repro.core.dist_matrix.DistSparseMatrix` +
    :class:`~repro.core.dist_matrix.DistDenseMatrix` for 1D/1.5D;
    :class:`~repro.core.spmm_2d.Dist2DSparseMatrix` + a NumPy array for
    2D).  Grid algorithms require the matching ``grid`` object
    (:class:`~repro.core.spmm_15d.ProcessGrid` or
    :class:`~repro.core.spmm_2d.Grid2D`).
    """
    variant = get_spmm(algorithm, sparsity_aware=sparsity_aware)
    if variant.needs_grid:
        if grid is None:
            raise ValueError(
                f"the {variant.algorithm} algorithm requires a process grid")
        return variant.fn(matrix, dense, grid, comm, **categories)
    if grid is not None:
        raise ValueError(
            f"the {variant.algorithm} algorithm does not take a process grid")
    return variant.fn(matrix, dense, comm, **categories)


class SpmmEngine:
    """A communicator-bound dispatcher for one (algorithm, mode) variant.

    The engine is the object the distributed GCN, the trainer and the
    benchmark harness hold instead of concrete kernel functions; swapping
    the algorithm or the communicator backend never touches those layers.
    """

    def __init__(self, comm: Communicator, algorithm: str = "1d",
                 sparsity_aware: bool = True, grid=None) -> None:
        self.comm = comm
        self.variant = get_spmm(algorithm, sparsity_aware=sparsity_aware)
        if self.variant.needs_grid and grid is None:
            raise ValueError(
                f"the {algorithm} algorithm requires a process grid")
        if not self.variant.needs_grid and grid is not None:
            raise ValueError(
                f"the {algorithm} algorithm does not take a process grid")
        self.grid = grid
        self.last_report: Optional[SpmmReport] = None

    @property
    def algorithm(self) -> str:
        return self.variant.algorithm

    @property
    def mode(self) -> str:
        return self.variant.mode

    def run(self, matrix, dense, **categories):
        """Execute ``Z = M H`` on this engine's communicator."""
        if self.variant.needs_grid:
            return self.variant.fn(matrix, dense, self.grid, self.comm,
                                   **categories)
        return self.variant.fn(matrix, dense, self.comm, **categories)

    def run_with_report(self, matrix, dense, **categories):
        """Like :meth:`run`, also capturing an :class:`SpmmReport` delta."""
        t0 = self.comm.elapsed()
        bytes0 = self.comm.events.total_bytes()
        msgs0 = self.comm.events.message_count()
        result = self.run(matrix, dense, **categories)
        report = SpmmReport(
            algorithm=self.algorithm,
            mode=self.mode,
            backend=self.comm.backend_name,
            elapsed_s=self.comm.elapsed() - t0,
            comm_bytes=self.comm.events.total_bytes() - bytes0,
            messages=self.comm.events.message_count() - msgs0,
        )
        self.last_report = report
        return result, report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SpmmEngine(algorithm={self.algorithm!r}, mode={self.mode!r}, "
                f"backend={self.comm.backend_name!r}, nranks={self.comm.nranks})")
