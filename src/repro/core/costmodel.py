"""Closed-form alpha-beta cost model of the paper's algorithms.

Section 4 of the paper derives per-process communication costs under the
alpha-beta model:

* sparsity-aware 1D:      ``T = alpha (P-1) + (P-1) cut_P(G) f beta``
* sparsity-aware 1.5D:    ``T = alpha (P/c^2) log(P/c^2) + (P/c^2) cut_P(G) f beta``
  plus the all-reduce of the replicated partial sums,
* sparsity-oblivious 1D (CAGNET): every block row of ``H`` is broadcast in
  full, so the bandwidth term is ``n f beta`` regardless of ``P`` — the
  reason the CAGNET curves in Figure 3 do not go down with more GPUs,
* per-epoch totals multiply the per-SpMM terms by ``2 L`` (two SpMMs per
  layer, forward and input-gradient).

This module evaluates those formulas for a concrete distributed matrix and
machine so that

* the benchmarks can print predicted-vs-simulated columns,
* :func:`crossover_process_count` can answer "from how many GPUs on does
  the sparsity-aware algorithm win?" analytically, and
* :func:`best_replication_factor` can pick the 1.5D ``c`` the way the
  paper's Figure 7 discussion does.

The *volume* quantities are exact (they come from the same ``NnzCols``
analysis the algorithms use); the *time* quantities are model estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..comm.machine import MachineModel, get_machine
from .analysis import ELEMENT_BYTES
from .dist_matrix import DistSparseMatrix

__all__ = [
    "CommCostBreakdown",
    "spmm_cost_1d_oblivious",
    "spmm_cost_1d_sparsity_aware",
    "spmm_cost_15d_oblivious",
    "spmm_cost_15d_sparsity_aware",
    "epoch_cost",
    "gradient_exchange_cost",
    "crossover_process_count",
    "best_replication_factor",
]


@dataclass(frozen=True)
class CommCostBreakdown:
    """Predicted per-process cost of one distributed SpMM (seconds)."""

    latency_s: float
    bandwidth_s: float
    reduction_s: float = 0.0
    compute_s: float = 0.0

    @property
    def communication_s(self) -> float:
        return self.latency_s + self.bandwidth_s + self.reduction_s

    @property
    def total_s(self) -> float:
        return self.communication_s + self.compute_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "latency_s": self.latency_s,
            "bandwidth_s": self.bandwidth_s,
            "reduction_s": self.reduction_s,
            "compute_s": self.compute_s,
            "communication_s": self.communication_s,
            "total_s": self.total_s,
        }


# ----------------------------------------------------------------------
# Volume helpers
# ----------------------------------------------------------------------
def _max_pairwise_rows(matrix: DistSparseMatrix) -> int:
    """``cut_P(G)``: the largest |NnzCols(i, j)| over all process pairs."""
    needed = matrix.needed_rows_matrix()
    return int(needed.max()) if needed.size else 0


def _avg_block_rows(matrix: DistSparseMatrix) -> float:
    return float(matrix.dist.block_sizes.mean())


def _local_spmm_flops(matrix: DistSparseMatrix, f: int) -> float:
    """Bottleneck (max over ranks) local SpMM flops of one distributed SpMM."""
    per_rank = np.array([block.nnz for block in matrix.block_rows], dtype=float)
    return float(per_rank.max()) * 2.0 * f if per_rank.size else 0.0


# ----------------------------------------------------------------------
# Per-SpMM cost formulas
# ----------------------------------------------------------------------
def spmm_cost_1d_oblivious(matrix: DistSparseMatrix, f: int,
                           machine: "str | MachineModel",
                           element_bytes: int = ELEMENT_BYTES
                           ) -> CommCostBreakdown:
    """CAGNET 1D: ``P`` broadcasts of full block rows of ``H``."""
    machine = get_machine(machine)
    p = matrix.nblocks
    if f <= 0:
        raise ValueError("feature width must be positive")
    alpha, beta = machine.worst_link(p)
    if p <= 1:
        return CommCostBreakdown(0.0, 0.0, 0.0,
                                 machine.spmm_time(_local_spmm_flops(matrix, f)))
    n = matrix.dist.n
    latency = p * math.log2(p) * alpha
    bandwidth = n * f * element_bytes * beta
    compute = machine.spmm_time(_local_spmm_flops(matrix, f))
    return CommCostBreakdown(latency, bandwidth, 0.0, compute)


def spmm_cost_1d_sparsity_aware(matrix: DistSparseMatrix, f: int,
                                machine: "str | MachineModel",
                                element_bytes: int = ELEMENT_BYTES
                                ) -> CommCostBreakdown:
    """Paper Section 4.1: ``alpha (P-1) + (P-1) cut_P(G) f beta``."""
    machine = get_machine(machine)
    p = matrix.nblocks
    if f <= 0:
        raise ValueError("feature width must be positive")
    alpha, beta = machine.worst_link(p)
    if p <= 1:
        return CommCostBreakdown(0.0, 0.0, 0.0,
                                 machine.spmm_time(_local_spmm_flops(matrix, f)))
    cut = _max_pairwise_rows(matrix)
    latency = (p - 1) * alpha
    bandwidth = (p - 1) * cut * f * element_bytes * beta
    compute = machine.spmm_time(_local_spmm_flops(matrix, f))
    return CommCostBreakdown(latency, bandwidth, 0.0, compute)


def spmm_cost_15d_oblivious(matrix: DistSparseMatrix, f: int, nranks: int,
                            replication: int,
                            machine: "str | MachineModel",
                            element_bytes: int = ELEMENT_BYTES
                            ) -> CommCostBreakdown:
    """1.5D oblivious: staged block-row broadcasts plus the row all-reduce."""
    machine = get_machine(machine)
    c = replication
    _check_15d(matrix, nranks, c)
    if f <= 0:
        raise ValueError("feature width must be positive")
    alpha, beta = machine.worst_link(nranks)
    stages = nranks // (c * c)
    avg_rows = _avg_block_rows(matrix)
    latency = stages * math.log2(max(2, matrix.nblocks)) * alpha
    bandwidth = stages * avg_rows * f * element_bytes * beta
    reduction = _allreduce_cost(machine, nranks, c, avg_rows, f, element_bytes)
    compute = machine.spmm_time(_local_spmm_flops(matrix, f) / c)
    return CommCostBreakdown(latency, bandwidth, reduction, compute)


def spmm_cost_15d_sparsity_aware(matrix: DistSparseMatrix, f: int, nranks: int,
                                 replication: int,
                                 machine: "str | MachineModel",
                                 element_bytes: int = ELEMENT_BYTES
                                 ) -> CommCostBreakdown:
    """Paper Section 4.2: ``alpha (P/c^2) log(P/c^2) + (P/c^2) cut f beta``
    plus the all-reduce of the replicated partial results."""
    machine = get_machine(machine)
    c = replication
    _check_15d(matrix, nranks, c)
    if f <= 0:
        raise ValueError("feature width must be positive")
    alpha, beta = machine.worst_link(nranks)
    stages = nranks // (c * c)
    cut = _max_pairwise_rows(matrix)
    avg_rows = _avg_block_rows(matrix)
    latency = stages * math.log2(max(2.0, stages)) * alpha
    bandwidth = stages * cut * f * element_bytes * beta
    reduction = _allreduce_cost(machine, nranks, c, avg_rows, f, element_bytes)
    compute = machine.spmm_time(_local_spmm_flops(matrix, f) / c)
    return CommCostBreakdown(latency, bandwidth, reduction, compute)


def _check_15d(matrix: DistSparseMatrix, nranks: int, c: int) -> None:
    if c <= 0 or nranks % c != 0 or (nranks // c) % c != 0:
        raise ValueError(f"invalid 1.5D configuration P={nranks}, c={c}")
    if matrix.nblocks != nranks // c:
        raise ValueError(
            f"matrix has {matrix.nblocks} block rows; 1.5D with P={nranks}, "
            f"c={c} expects {nranks // c}")


def _allreduce_cost(machine: MachineModel, nranks: int, c: int,
                    avg_rows: float, f: int, element_bytes: int) -> float:
    """Ring all-reduce of one replicated block row over ``c`` replicas."""
    if c <= 1:
        return 0.0
    alpha, beta = machine.worst_link(nranks)
    nbytes = avg_rows * f * element_bytes
    return 2.0 * math.log2(c) * alpha + 2.0 * nbytes * beta * (c - 1) / c


# ----------------------------------------------------------------------
# Epoch / training predictions
# ----------------------------------------------------------------------
def _overlap_windows(algorithm: str, sparsity_aware: bool,
                     matrix: DistSparseMatrix,
                     nranks: Optional[int], replication: int) -> int:
    """Number of pipelined stage windows one SpMM of the variant has.

    This is what double buffering amortises over: the chunked 1D
    broadcast has one window per block row, the 1.5D schedules one per
    (stage, replica-column) entry (oblivious) or per stage (sparsity
    aware).  The sparsity-aware 1D algorithm issues a single un-staged
    all-to-allv — nothing to overlap, so it reports zero windows.
    """
    if algorithm == "1d":
        return 0 if sparsity_aware else matrix.nblocks
    if algorithm == "1.5d":
        stages = nranks // (replication * replication)
        return stages if sparsity_aware else stages * replication
    return 0


def gradient_exchange_cost(layer_dims: Sequence[int],
                           machine: "str | MachineModel",
                           nranks: int,
                           element_bytes: int = ELEMENT_BYTES,
                           grad_element_bytes: Optional[int] = None,
                           bucket_bytes: int = 0,
                           overlap: bool = False,
                           compute_s: float = 0.0) -> float:
    """Predicted per-epoch cost of the weight-gradient all-reduces.

    Each layer contributes one ``f_in x f_out`` ring all-reduce at the
    gradient wire width (``grad_element_bytes``, defaulting to the model
    element width).  Fusion packs consecutive layers into buckets of
    ``bucket_bytes`` — fewer messages, so the per-message latency term is
    amortised.  With ``overlap`` the buckets post during the backward
    pass: everything except the last bucket's share can hide behind the
    remaining backward compute (``compute_s``), mirroring both the
    simulator's ``max(comm, compute)`` accounting and the fusion/overlap
    tension — one giant bucket flushes after the last layer and has
    nothing left to hide behind.
    """
    machine = get_machine(machine)
    p = int(nranks)
    if p <= 1:
        return 0.0
    geb = element_bytes if grad_element_bytes is None else grad_element_bytes
    sizes = [int(layer_dims[l - 1]) * int(layer_dims[l]) * geb
             for l in range(1, len(layer_dims))]
    buckets: List[float] = []
    open_bytes = 0.0
    for nbytes in sizes:
        open_bytes += nbytes
        if open_bytes >= bucket_bytes:
            buckets.append(open_bytes)
            open_bytes = 0.0
    if open_bytes > 0.0:
        buckets.append(open_bytes)
    alpha, beta = machine.worst_link(p)
    total = 0.0
    for nbytes in buckets:
        total += 2.0 * math.log2(p) * alpha \
            + 2.0 * nbytes * beta * (p - 1) / p
    if overlap and len(buckets) >= 1:
        windows = len(buckets)
        hidden = min(total, compute_s) * (windows - 1) / max(1, windows)
        total -= hidden
    return total


def epoch_cost(matrix: DistSparseMatrix, layer_dims: Sequence[int],
               machine: "str | MachineModel",
               algorithm: str = "1d", sparsity_aware: bool = True,
               nranks: Optional[int] = None, replication: int = 1,
               element_bytes: int = ELEMENT_BYTES,
               pipeline_depth: int = 1,
               grad_exchange: bool = False,
               grad_overlap: bool = False,
               grad_bucket_bytes: int = 0,
               grad_element_bytes: Optional[int] = None) -> CommCostBreakdown:
    """Predicted cost of one training epoch (2 distributed SpMMs per layer).

    ``layer_dims`` is ``[f_0, ..., f_L]``; the forward SpMM of layer ``l``
    moves ``f_{l-1}``-wide rows and the backward SpMM moves ``f_l``-wide
    rows, matching the trainer's actual traffic.

    With ``pipeline_depth > 1`` (the compiled operators' double-buffered
    execution) the bandwidth term of each staged SpMM overlaps its local
    compute: up to ``min(bandwidth, compute) * (w - 1) / w`` is hidden,
    where ``w`` is the variant's stage-window count — the first window's
    exchange can never be hidden, and latency plus the replica reduction
    stay on the critical path.  ``pipeline_depth=1`` reproduces the
    synchronous model exactly.

    With ``grad_exchange=True`` the model adds the per-layer
    weight-gradient all-reduces (:func:`gradient_exchange_cost`) to the
    reduction term, honouring the trainer's ``grad_overlap`` /
    ``grad_bucket_bytes`` / wire-width settings; the default keeps the
    historical SpMM-only prediction so existing tables are unchanged.
    """
    if len(layer_dims) < 2:
        raise ValueError("layer_dims needs at least [in_features, classes]")
    if pipeline_depth < 1:
        raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
    totals = dict(latency_s=0.0, bandwidth_s=0.0, reduction_s=0.0, compute_s=0.0)
    for l in range(1, len(layer_dims)):
        for f in (int(layer_dims[l - 1]), int(layer_dims[l])):
            if algorithm == "1d":
                fn = spmm_cost_1d_sparsity_aware if sparsity_aware \
                    else spmm_cost_1d_oblivious
                cost = fn(matrix, f, machine, element_bytes)
            elif algorithm == "1.5d":
                if nranks is None:
                    raise ValueError("the 1.5D model needs nranks")
                fn = spmm_cost_15d_sparsity_aware if sparsity_aware \
                    else spmm_cost_15d_oblivious
                cost = fn(matrix, f, nranks, replication, machine,
                          element_bytes)
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
            bandwidth = cost.bandwidth_s
            if pipeline_depth > 1:
                windows = _overlap_windows(algorithm, sparsity_aware,
                                           matrix, nranks, replication)
                if windows > 1:
                    hidden = min(bandwidth, cost.compute_s) \
                        * (windows - 1) / windows
                    bandwidth -= hidden
            totals["latency_s"] += cost.latency_s
            totals["bandwidth_s"] += bandwidth
            totals["reduction_s"] += cost.reduction_s
            totals["compute_s"] += cost.compute_s
    if grad_exchange:
        p = nranks if nranks is not None else matrix.nblocks
        totals["reduction_s"] += gradient_exchange_cost(
            layer_dims, machine, p,
            element_bytes=element_bytes,
            grad_element_bytes=grad_element_bytes,
            bucket_bytes=grad_bucket_bytes,
            overlap=grad_overlap,
            compute_s=totals["compute_s"] / 2.0)
    return CommCostBreakdown(**totals)


def crossover_process_count(adjacency: sp.spmatrix, f: int,
                            p_values: Sequence[int],
                            machine: "str | MachineModel",
                            partitioner_parts: Optional[dict] = None
                            ) -> Optional[int]:
    """Smallest process count at which the sparsity-aware 1D SpMM is
    predicted to be faster than the oblivious one.

    Parameters
    ----------
    partitioner_parts:
        Optional mapping ``p -> partition vector``; when given, the matrix
        is permuted accordingly before the analysis (i.e. the SA+partitioner
        curve).  Without it the natural block distribution is used (the
        plain SA curve).

    Returns None when the sparsity-aware variant never wins in the range.
    """
    from ..graphs.adjacency import permutation_from_parts, symmetric_permutation
    from .dist_matrix import BlockRowDistribution

    adjacency = adjacency.tocsr()
    for p in sorted(p_values):
        if p > adjacency.shape[0]:
            continue
        matrix_csr = adjacency
        if partitioner_parts and p in partitioner_parts:
            parts = np.asarray(partitioner_parts[p])
            perm = permutation_from_parts(parts, p)
            matrix_csr = symmetric_permutation(adjacency, perm)
            sizes = np.bincount(parts, minlength=p)
            dist = BlockRowDistribution.from_partition(sizes)
        else:
            dist = BlockRowDistribution.uniform(adjacency.shape[0], p)
        matrix = DistSparseMatrix(matrix_csr, dist)
        aware = spmm_cost_1d_sparsity_aware(matrix, f, machine)
        oblivious = spmm_cost_1d_oblivious(matrix, f, machine)
        if aware.communication_s < oblivious.communication_s:
            return p
    return None


def best_replication_factor(matrix_builder, f: int, nranks: int,
                            machine: "str | MachineModel",
                            candidates: Sequence[int] = (1, 2, 4),
                            sparsity_aware: bool = True) -> int:
    """Pick the 1.5D replication factor with the lowest predicted cost.

    Parameters
    ----------
    matrix_builder:
        Callable ``c -> DistSparseMatrix`` producing the matrix distributed
        over ``nranks / c`` block rows (the caller decides how to partition
        for each candidate).
    """
    best_c, best_time = None, float("inf")
    for c in candidates:
        if c <= 0 or nranks % c != 0 or (nranks // c) % c != 0:
            continue
        matrix = matrix_builder(c)
        if c == 1:
            fn = spmm_cost_1d_sparsity_aware if sparsity_aware \
                else spmm_cost_1d_oblivious
            cost = fn(matrix, f, machine)
        else:
            fn = spmm_cost_15d_sparsity_aware if sparsity_aware \
                else spmm_cost_15d_oblivious
            cost = fn(matrix, f, nranks, c, machine)
        if cost.total_s < best_time:
            best_time, best_c = cost.total_s, c
    if best_c is None:
        raise ValueError(f"no feasible replication factor among {candidates} "
                         f"for P={nranks}")
    return best_c
