"""Communication-volume analysis: predictions and paper-style tables.

Separating the *predicted* communication (a pure function of the sparse
matrix, its distribution and the algorithm) from the *measured*
communication (what the simulator's event log records) gives the test
suite a strong cross-check: the two must agree exactly for every variant.

It also provides :func:`single_spmm_volume_table`, which reproduces
Table 2 of the paper (average / maximum data communicated by a process in
one SpMM under a given partitioner, and the resulting load imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..partition import communication_volumes_1d, get_partitioner
from ..partition.base import PartitionResult
from .dist_matrix import DistSparseMatrix

__all__ = [
    "predicted_rows_oblivious_1d",
    "predicted_rows_sparsity_aware_1d",
    "predicted_bytes_per_spmm",
    "single_spmm_volume_table",
    "VolumeTableRow",
]

#: bytes per dense matrix element moved by the simulator (float64).
ELEMENT_BYTES = 8


def predicted_rows_oblivious_1d(matrix: DistSparseMatrix) -> np.ndarray:
    """Rows of ``H`` each rank *sends* per sparsity-oblivious 1D SpMM.

    Every rank broadcasts its whole block row to the other ``P - 1`` ranks,
    independent of sparsity.
    """
    p = matrix.nblocks
    sizes = matrix.dist.block_sizes.astype(np.int64)
    return sizes * (p - 1)


def predicted_rows_sparsity_aware_1d(matrix: DistSparseMatrix) -> np.ndarray:
    """Rows of ``H`` each rank sends per sparsity-aware 1D SpMM.

    Rank ``j`` sends ``|NnzCols(i, j)|`` rows to every other rank ``i``; the
    total is exactly the partition's send volume in
    :func:`repro.partition.metrics.communication_volumes_1d`.
    """
    needed = matrix.needed_rows_matrix()     # [i, j] = rows j -> i
    return needed.sum(axis=0).astype(np.int64)


def predicted_bytes_per_spmm(matrix: DistSparseMatrix, f: int,
                             sparsity_aware: bool,
                             element_bytes: int = ELEMENT_BYTES) -> np.ndarray:
    """Bytes sent per rank in one distributed SpMM (1D algorithms)."""
    if f <= 0:
        raise ValueError("feature width must be positive")
    rows = predicted_rows_sparsity_aware_1d(matrix) if sparsity_aware \
        else predicted_rows_oblivious_1d(matrix)
    return rows * f * element_bytes


@dataclass(frozen=True)
class VolumeTableRow:
    """One row of the Table-2 reproduction."""

    nparts: int
    avg_mb: float
    max_mb: float
    imbalance_pct: float
    total_mb: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "p": float(self.nparts),
            "average_MB": self.avg_mb,
            "max_MB": self.max_mb,
            "load_imbalance_pct": self.imbalance_pct,
            "total_MB": self.total_mb,
        }


def single_spmm_volume_table(adjacency: sp.spmatrix,
                             p_values: Sequence[int],
                             f: int,
                             partitioner: str = "metis_like",
                             element_bytes: int = ELEMENT_BYTES,
                             seed: int = 0) -> List[VolumeTableRow]:
    """Reproduce Table 2: per-process data in a single SpMM vs. ``p``.

    For each process count, the graph is partitioned with the requested
    partitioner and the sparsity-aware send volumes are converted to
    megabytes using the dataset's feature width ``f``.
    """
    if f <= 0:
        raise ValueError("feature width must be positive")
    rows: List[VolumeTableRow] = []
    for p in p_values:
        part = get_partitioner(partitioner, seed=seed).partition(adjacency, p)
        vol = communication_volumes_1d(adjacency, part.parts, p)
        send_bytes = vol.send_volume.astype(np.float64) * f * element_bytes
        avg = float(send_bytes.mean())
        mx = float(send_bytes.max())
        imb = ((mx / avg) - 1.0) * 100.0 if avg > 0 else 0.0
        rows.append(VolumeTableRow(
            nparts=p,
            avg_mb=avg / 1e6,
            max_mb=mx / 1e6,
            imbalance_pct=imb,
            total_mb=float(send_bytes.sum()) / 1e6,
        ))
    return rows
