"""Configuration dataclasses for distributed GCN training."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..comm.factory import available_backends
from ..comm.machine import MachineModel
from .gradsync import GRAD_DTYPES

__all__ = ["AUTO", "Algorithm", "DistTrainConfig", "scheme_label",
           "training_layer_dims"]


#: The two distributed SpMM families the paper evaluates.
ALGORITHMS = ("1d", "1.5d")

#: Sentinel value for fields the autotuning planner should choose
#: (``algorithm`` — which also frees the sparsity mode and replication
#: factor —, ``backend`` and ``partitioner``); see :mod:`repro.plan`.
AUTO = "auto"


class Algorithm:
    """String constants for the supported distributed SpMM algorithms."""

    ONE_D = "1d"
    ONE_POINT_FIVE_D = "1.5d"


def training_layer_dims(n_features: int, n_classes: int, hidden: int,
                        n_layers: int) -> list:
    """Layer widths ``[f_0, ..., f_L]`` of the GCN the trainer builds.

    The single source of truth shared by the trainer and the autotuning
    planner — the planner must score/probe exactly the architecture that
    will be trained, or "auto" would silently optimise a different model.
    """
    if n_layers == 1:
        return [n_features, n_classes]
    return [n_features] + [hidden] * (n_layers - 1) + [n_classes]


def scheme_label(sparsity_aware: bool, partitioner: Optional[str]) -> str:
    """The paper-style scheme label (CAGNET / SA / SA+<PART>) of a
    configuration; shared by configs, plan candidates and plans."""
    if not sparsity_aware:
        return "CAGNET"
    if partitioner in (None, "block", "random"):
        return "SA"
    return f"SA+{partitioner.upper().replace('_LIKE', '')}"


@dataclass(frozen=True)
class DistTrainConfig:
    """Configuration of a distributed training run.

    Attributes
    ----------
    n_ranks:
        Number of simulated processes (GPUs in the paper).
    algorithm:
        ``"1d"``, ``"1.5d"``, or ``"auto"`` to let the planner pick the
        variant (algorithm family, sparsity mode and replication factor).
    sparsity_aware:
        ``False`` reproduces the CAGNET sparsity-oblivious baselines;
        ``True`` enables the paper's sparsity-aware communication.
    partitioner:
        Registry name of the partitioner used to distribute the graph
        (``"block"``, ``"random"``, ``"metis_like"``, ``"gvb"``).  ``None``
        means the natural block distribution (no reordering); ``"auto"``
        lets the planner pick.
    replication_factor:
        The 1.5D replication factor ``c`` (ignored for 1D; ``c = 1``
        degenerates to the 1D layout).
    hidden / n_layers:
        GCN architecture (paper: 3 layers, 16 hidden units).
    epochs / learning_rate:
        Training loop hyper-parameters (paper: 100 epochs).
    machine:
        Machine preset name or a :class:`~repro.comm.MachineModel` (used by
        simulation backends; real backends measure wall time and ignore it).
    backend:
        Communicator backend name from :func:`repro.comm.available_backends`
        (``"sim"`` for the deterministic simulator, ``"threaded"`` for real
        shared-memory worker threads, ``"process"`` for one OS process per
        rank with shared-memory transport), or ``"auto"`` to let the
        planner pick.
    seed:
        Seed shared by weight init, partitioner tie-breaking and dataset
        generation helpers.
    normalize_adjacency:
        Apply the symmetric GCN normalisation before training.
    dtype:
        Training precision: ``"float64"`` (default, bit-compatible with
        the reference model) or ``"float32"`` (half the communication
        volume and activation memory; losses match to single-precision
        tolerance).  Threaded through the adjacency, the features, the
        weights and every exchanged payload — see ``docs/performance.md``.
    pipeline_depth:
        Double-buffering depth of the compiled SpMM stage schedules
        (``1`` = fully synchronous exchanges, the default; ``2`` =
        classic double buffering: the next stage's operand is prefetched
        with nonblocking collectives while the current stage computes).
        Results are bit-identical at any depth; see the "Overlap &
        pipelining" section of ``docs/performance.md``.
    grad_overlap:
        Wait-free backward pass: post each layer's weight-gradient
        all-reduce nonblocking as soon as it is computed and drain the
        handles in ``apply_gradients``, overlapping the reductions with
        the remaining backward compute.  Bit-identical results at the
        same wire precision; see the "Gradient exchange" section of
        ``docs/performance.md``.
    grad_bucket_bytes:
        Tensor-fusion bucket size (wire bytes) for the gradient exchange:
        consecutive small per-layer gradients are packed into one flat
        fused buffer before reduction.  ``None`` (default) sizes buckets
        from the calibrated per-message overhead of the active backend —
        fusion engages only when ``grad_overlap`` or a reduced
        ``grad_dtype`` is requested, keeping the default path identical
        to the synchronous trainer.  ``0`` forces one reduction per
        layer.
    grad_dtype:
        Wire precision of the gradient exchange: ``None`` (default, the
        model dtype), ``"float32"``, ``"float16"`` or ``"bfloat16"``
        (carried as a uint16 view — NumPy has no native bf16).  Gradients
        are cast down for the wire, reduced, and applied to the
        full-precision master weights (``dtype``).
    checkpoint_dir:
        Directory for atomic training checkpoints (weights, optimizer
        state, RNG state, epoch counter, plan fingerprint — see
        :mod:`repro.core.checkpoint`).  ``None`` (default) disables
        checkpointing.
    checkpoint_every:
        Save a checkpoint every N completed epochs (requires
        ``checkpoint_dir``; ``0`` disables periodic saves).
    resume:
        Resume from the newest intact checkpoint in ``checkpoint_dir``
        instead of starting at epoch 0.  Resuming is bit-identical to
        the uninterrupted run on the same plan; a checkpoint written for
        an incompatible plan is rejected with a clear error.
    max_restarts:
        Supervised retry budget: on a detected rank loss
        (:class:`~repro.comm.faults.WorkerFailure`) the trainer restarts
        up to this many times, restoring the last checkpoint when one
        exists.  ``0`` (default) propagates the failure.
    elastic:
        On restart after a rank loss, re-partition and re-plan at the
        surviving rank count (``n_ranks - 1``) instead of retrying the
        same configuration; the dead configuration is recorded in the
        plan cache so it is never served again.
    """

    n_ranks: int = 4
    algorithm: str = Algorithm.ONE_D
    sparsity_aware: bool = True
    partitioner: Optional[str] = "gvb"
    replication_factor: int = 1
    hidden: int = 16
    n_layers: int = 3
    epochs: int = 100
    learning_rate: float = 0.05
    machine: Union[str, MachineModel] = "perlmutter"
    backend: str = "sim"
    seed: int = 0
    normalize_adjacency: bool = True
    dtype: str = "float64"
    pipeline_depth: int = 1
    grad_overlap: bool = False
    grad_bucket_bytes: Optional[int] = None
    grad_dtype: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 0
    resume: bool = False
    max_restarts: int = 0
    elastic: bool = False

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if self.backend != AUTO and self.backend not in available_backends():
            raise ValueError(
                f"unknown communicator backend {self.backend!r}; "
                f"available: {available_backends()} (or 'auto')")
        if self.algorithm != AUTO and self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {ALGORITHMS} or 'auto', "
                f"got {self.algorithm!r}")
        if self.replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if self.algorithm == Algorithm.ONE_POINT_FIVE_D:
            c = self.replication_factor
            if self.n_ranks % c != 0:
                raise ValueError(
                    f"replication factor {c} must divide n_ranks "
                    f"{self.n_ranks}")
            if (self.n_ranks // c) % c != 0:
                raise ValueError(
                    f"1.5D requires c | P/c (P={self.n_ranks}, c={c})")
        if self.n_layers < 1:
            raise ValueError("n_layers must be at least 1")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}")
        if not isinstance(self.pipeline_depth, int) \
                or self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be a positive integer, got "
                f"{self.pipeline_depth!r}")
        if self.grad_bucket_bytes is not None and (
                not isinstance(self.grad_bucket_bytes, int)
                or self.grad_bucket_bytes < 0):
            raise ValueError(
                f"grad_bucket_bytes must be a non-negative integer or None "
                f"(auto), got {self.grad_bucket_bytes!r}")
        if self.grad_dtype is not None and self.grad_dtype not in GRAD_DTYPES:
            raise ValueError(
                f"grad_dtype must be one of {GRAD_DTYPES} or None (the "
                f"model dtype), got {self.grad_dtype!r}")
        if not isinstance(self.checkpoint_every, int) \
                or self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be a non-negative integer, got "
                f"{self.checkpoint_every!r}")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError(
                "checkpoint_every requires checkpoint_dir to be set")
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume requires checkpoint_dir to be set")
        if not isinstance(self.max_restarts, int) or self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be a non-negative integer, got "
                f"{self.max_restarts!r}")

    @property
    def np_dtype(self):
        """The configured precision as a NumPy dtype."""
        import numpy as np
        return np.dtype(self.dtype)

    @property
    def needs_planning(self) -> bool:
        """Whether any field is ``"auto"`` and must be resolved by the
        planner (:func:`repro.plan.resolve_config`) before training."""
        return AUTO in (self.algorithm, self.backend, self.partitioner)

    @property
    def n_block_rows(self) -> int:
        """Number of block rows of the data distribution (P for 1D, P/c for 1.5D)."""
        if self.algorithm == AUTO:
            raise ValueError(
                "algorithm is 'auto'; resolve the plan first "
                "(repro.plan.resolve_config)")
        if self.algorithm == Algorithm.ONE_POINT_FIVE_D:
            return self.n_ranks // self.replication_factor
        return self.n_ranks

    @property
    def scheme_label(self) -> str:
        """Short label used in benchmark tables (CAGNET / SA / SA+<part>)."""
        if self.needs_planning:
            return "AUTO"
        return scheme_label(self.sparsity_aware, self.partitioner)
