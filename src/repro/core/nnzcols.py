"""Nonzero-column analysis of block-distributed sparse matrices.

``NnzCols(i, j)`` — the sorted list of nonzero column indices of the
off-diagonal block ``A^T_{ij}`` — is the central data structure of the
paper's sparsity-aware algorithms: it tells process ``i`` exactly which
rows of ``H_j`` it must receive from process ``j``, and (symmetrically)
tells process ``j`` which rows it must send.

This module computes those index sets from a CSR block row and the block
boundaries, and produces *compacted* sub-blocks whose column indices are
renumbered to ``[0, len(NnzCols))`` so the local SpMM can run directly on
the received (packed) rows without scattering them into a full-width
buffer first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["BlockColumnInfo", "split_block_row", "nnz_columns_per_block"]


class BlockColumnInfo:
    """Sparsity summary of one ``A^T_{ij}`` block.

    Attributes
    ----------
    block:
        Destination block (column-block index ``j``).
    nnz_cols_global:
        Sorted global column indices with at least one nonzero in the block.
    nnz_cols_local:
        The same indices relative to the start of block ``j`` (i.e. row
        offsets into ``H_j``).
    compact:
        The block with its columns restricted to ``nnz_cols_global`` and
        renumbered to ``0..len(nnz_cols_global)-1`` (CSR).  Multiplying
        ``compact @ H_j[nnz_cols_local]`` equals the block's contribution.
    width:
        Full column width of block ``j`` (the number of rows of ``H_j``).
    full:
        The block as a CSR matrix over the *full* width of block ``j``
        (used by the sparsity-oblivious algorithms).  Built **lazily** on
        first access by widening ``compact`` — the sparsity-aware paths
        never touch it, so they never pay its memory; the value buffer is
        shared with ``compact`` either way.
    """

    __slots__ = ("block", "nnz_cols_global", "nnz_cols_local", "compact",
                 "width", "_full")

    def __init__(self, block: int, nnz_cols_global: np.ndarray,
                 nnz_cols_local: np.ndarray, compact: sp.csr_matrix,
                 width: int, full: Optional[sp.csr_matrix] = None) -> None:
        self.block = block
        self.nnz_cols_global = nnz_cols_global
        self.nnz_cols_local = nnz_cols_local
        self.compact = compact
        self.width = int(width)
        self._full = full

    @property
    def full(self) -> sp.csr_matrix:
        if self._full is None:
            # Widening is a pure column renumbering: map each compacted
            # column index back through NnzCols.  ``nnz_cols_local`` is
            # strictly increasing, so per-row sorted order is preserved and
            # the result equals slicing the original block directly.  The
            # indptr/data buffers are shared with ``compact``.
            compact = self.compact
            if self.nnz_cols_local.size:
                indices = self.nnz_cols_local[compact.indices]
            else:
                indices = compact.indices
            self._full = sp.csr_matrix(
                (compact.data, indices, compact.indptr),
                shape=(compact.shape[0], self.width))
        return self._full

    @property
    def full_materialized(self) -> bool:
        """Whether the full-width CSR has been built (memory accounting)."""
        return self._full is not None

    @property
    def n_needed_rows(self) -> int:
        return int(self.nnz_cols_global.size)

    @property
    def nnz(self) -> int:
        return int(self.compact.nnz)


def _check_bounds(bounds: np.ndarray, n: int) -> np.ndarray:
    bounds = np.asarray(bounds, dtype=np.int64)
    if bounds.ndim != 1 or bounds.size < 2:
        raise ValueError("block bounds must be a 1-D array with >= 2 entries")
    if bounds[0] != 0 or bounds[-1] != n:
        raise ValueError(f"block bounds must start at 0 and end at {n}")
    if np.any(np.diff(bounds) < 0):
        raise ValueError("block bounds must be non-decreasing")
    return bounds


def split_block_row(block_row: sp.spmatrix, bounds: Sequence[int]
                    ) -> List[BlockColumnInfo]:
    """Split one block row of ``A^T`` into per-destination-block summaries.

    Parameters
    ----------
    block_row:
        The rows of ``A^T`` owned by one process (shape ``local_rows x n``).
    bounds:
        Global column boundaries of the ``P`` blocks (length ``P + 1``).
    """
    block_row = block_row.tocsc()
    n = block_row.shape[1]
    bounds = _check_bounds(np.asarray(bounds), n)
    nblocks = bounds.size - 1

    infos: List[BlockColumnInfo] = []
    for j in range(nblocks):
        lo, hi = int(bounds[j]), int(bounds[j + 1])
        sub = block_row[:, lo:hi].tocsc()
        col_nnz = np.diff(sub.indptr)
        local_cols = np.flatnonzero(col_nnz > 0)
        compact = sub[:, local_cols].tocsr()
        infos.append(BlockColumnInfo(
            block=j,
            nnz_cols_global=(local_cols + lo).astype(np.int64),
            nnz_cols_local=local_cols.astype(np.int64),
            compact=compact,
            width=hi - lo,
        ))
    return infos


def nnz_columns_per_block(block_row: sp.spmatrix, bounds: Sequence[int]
                          ) -> List[np.ndarray]:
    """Just the ``NnzCols`` index lists (local to each block)."""
    return [info.nnz_cols_local for info in split_block_row(block_row, bounds)]
