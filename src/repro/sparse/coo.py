"""Coordinate-format sparse matrix container.

:class:`COOMatrix` is the natural construction format for graphs: edge lists
map directly onto ``(row, col, value)`` triplets.  The container is
deliberately small — construction, cleanup (duplicate summing, self-loop
removal, symmetrisation) and conversion to :class:`~repro.sparse.csr.CSRMatrix`
or ``scipy.sparse`` — because all computational kernels live on the CSR side.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from . import kernels

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix stored as ``(row, col, value)`` triplets.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    rows / cols / data:
        Equal-length 1-D arrays of row indices, column indices and values.
        ``data=None`` means every stored entry has value 1 (an unweighted
        graph edge list).
    """

    def __init__(self, shape: Tuple[int, int], rows: np.ndarray,
                 cols: np.ndarray, data: Optional[np.ndarray] = None) -> None:
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"shape must be non-negative, got {shape}")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if data is None:
            data = np.ones(rows.shape, dtype=np.float64)
        data = np.asarray(data, dtype=np.float64)
        if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
            raise ValueError("rows, cols and data must be equal-length 1-D arrays")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError(f"row indices must lie in [0, {n_rows})")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError(f"column indices must lie in [0, {n_cols})")
        self.shape: Tuple[int, int] = (n_rows, n_cols)
        self.rows = rows
        self.cols = cols
        self.data = data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray,
                   weights: Optional[np.ndarray] = None) -> "COOMatrix":
        """Build a square matrix from an ``(m, 2)`` edge array."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of vertex pairs")
        return cls((n, n), edges[:, 0], edges[:, 1], weights)

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "COOMatrix":
        """Convert any ``scipy.sparse`` matrix."""
        coo = matrix.tocoo()
        return cls(coo.shape, coo.row.astype(np.int64),
                   coo.col.astype(np.int64), coo.data.astype(np.float64))

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "COOMatrix":
        """A matrix with no stored entries."""
        return cls(shape, np.empty(0, dtype=np.int64),
                   np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of *stored* entries (duplicates count separately)."""
        return int(self.rows.size)

    @property
    def is_square(self) -> bool:
        return self.shape[0] == self.shape[1]

    # ------------------------------------------------------------------
    # Cleanup transformations (all return new matrices)
    # ------------------------------------------------------------------
    def sum_duplicates(self) -> "COOMatrix":
        """Merge repeated ``(row, col)`` entries by summing their values."""
        indptr, indices, data = kernels.coo_to_csr_arrays(
            self.shape[0], self.shape[1], self.rows, self.cols, self.data,
            sum_duplicates=True)
        rows = kernels.expand_indptr(indptr)
        return COOMatrix(self.shape, rows, indices, data)

    def remove_self_loops(self) -> "COOMatrix":
        """Drop entries on the main diagonal."""
        if not self.is_square:
            raise ValueError("self loops are only defined for square matrices")
        keep = self.rows != self.cols
        return COOMatrix(self.shape, self.rows[keep], self.cols[keep],
                         self.data[keep])

    def symmetrize(self) -> "COOMatrix":
        """Return ``max``-symmetrised structure: every edge stored both ways.

        Duplicate entries created by the union are merged by taking the
        maximum value, so an unweighted graph stays 0/1.
        """
        if not self.is_square:
            raise ValueError("only square matrices can be symmetrised")
        rows = np.concatenate([self.rows, self.cols])
        cols = np.concatenate([self.cols, self.rows])
        data = np.concatenate([self.data, self.data])
        if rows.size == 0:
            return COOMatrix(self.shape, rows, cols, data)
        # Deduplicate by (row, col), keeping the maximum value.
        keys = rows * np.int64(self.shape[1]) + cols
        order = np.argsort(keys, kind="stable")
        keys, rows, cols, data = keys[order], rows[order], cols[order], data[order]
        new_group = np.empty(keys.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = keys[1:] != keys[:-1]
        group_ids = np.cumsum(new_group) - 1
        merged = np.full(int(group_ids[-1]) + 1, -np.inf)
        np.maximum.at(merged, group_ids, data)
        return COOMatrix(self.shape, rows[new_group], cols[new_group], merged)

    def transpose(self) -> "COOMatrix":
        """The transpose (swap row and column indices)."""
        return COOMatrix((self.shape[1], self.shape[0]),
                         self.cols.copy(), self.rows.copy(), self.data.copy())

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRMatrix":
        """Convert to :class:`~repro.sparse.csr.CSRMatrix` (sums duplicates)."""
        from .csr import CSRMatrix
        indptr, indices, data = kernels.coo_to_csr_arrays(
            self.shape[0], self.shape[1], self.rows, self.cols, self.data,
            sum_duplicates=True)
        return CSRMatrix(self.shape, indptr, indices, data, check=False)

    def to_scipy(self) -> sp.coo_matrix:
        """Convert to ``scipy.sparse.coo_matrix``."""
        return sp.coo_matrix((self.data, (self.rows, self.cols)),
                             shape=self.shape)

    def to_dense(self) -> np.ndarray:
        """Dense ``(n_rows, n_cols)`` array (duplicates sum); tests only."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"COOMatrix(shape={self.shape}, nnz={self.nnz})")
