"""Block-partitioned views of a CSR matrix.

The paper's distributed algorithms view ``A^T`` as a grid of blocks induced
by the 1D block-row distribution: block row ``i`` is owned by process ``i``
and its off-diagonal blocks ``A^T_{ij}`` determine what process ``i`` must
receive from process ``j``.  This module provides that decomposition on top
of the from-scratch :class:`~repro.sparse.csr.CSRMatrix`:

* :func:`block_bounds`          — balanced contiguous block boundaries,
* :class:`SparseBlock`          — one analysed ``A^T_{ij}`` block (full and
  column-compacted forms plus its ``NnzCols`` set),
* :class:`BlockedCSR`           — the full grid of analysed blocks with
  communication-volume queries.

:class:`BlockedCSR` mirrors (and is property-tested against) the
scipy-backed :class:`repro.core.dist_matrix.DistSparseMatrix`, demonstrating
that the reproduction does not depend on scipy for its central data
structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .csr import CSRMatrix

__all__ = ["block_bounds", "SparseBlock", "BlockedCSR"]


def block_bounds(n: int, nblocks: int) -> np.ndarray:
    """Balanced contiguous block boundaries: ``nblocks + 1`` entries.

    The first ``n % nblocks`` blocks get one extra row, matching
    :meth:`repro.core.dist_matrix.BlockRowDistribution.uniform`.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if nblocks <= 0:
        raise ValueError("nblocks must be positive")
    base, extra = divmod(n, nblocks)
    sizes = np.full(nblocks, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)


def _check_bounds(bounds: np.ndarray, n: int) -> np.ndarray:
    bounds = np.asarray(bounds, dtype=np.int64)
    if bounds.ndim != 1 or bounds.size < 2:
        raise ValueError("bounds must be a 1-D array with at least 2 entries")
    if bounds[0] != 0 or bounds[-1] != n:
        raise ValueError(f"bounds must start at 0 and end at {n}")
    if np.any(np.diff(bounds) < 0):
        raise ValueError("bounds must be non-decreasing")
    return bounds


@dataclass
class SparseBlock:
    """One analysed ``A^T_{ij}`` block of a blocked CSR matrix.

    Attributes
    ----------
    row_block / col_block:
        Grid coordinates of the block.
    full:
        The block over the full width of column block ``j``.
    compact:
        The block restricted to its nonzero columns, renumbered to
        ``0..len(nnz_cols)-1``.
    nnz_cols_local:
        ``NnzCols(i, j)``: column indices (local to block ``j``) that hold a
        nonzero — equivalently the rows of ``H_j`` process ``i`` needs.
    col_offset:
        Global column index of the block's first column (so
        ``nnz_cols_local + col_offset`` gives global indices).
    """

    row_block: int
    col_block: int
    full: CSRMatrix
    compact: CSRMatrix
    nnz_cols_local: np.ndarray
    col_offset: int

    @property
    def nnz(self) -> int:
        return self.full.nnz

    @property
    def n_needed_rows(self) -> int:
        """Number of ``H_j`` rows this block requires (|NnzCols(i, j)|)."""
        return int(self.nnz_cols_local.size)

    @property
    def nnz_cols_global(self) -> np.ndarray:
        return self.nnz_cols_local + np.int64(self.col_offset)

    def multiply_full(self, h_block: np.ndarray) -> np.ndarray:
        """``A^T_{ij} @ H_j`` using the full-width block (oblivious path)."""
        return self.full.spmm(h_block)

    def multiply_compact(self, packed_rows: np.ndarray) -> np.ndarray:
        """``A^T_{ij} @ H_j`` given only ``H_j[NnzCols]`` (sparsity-aware path)."""
        return self.compact.spmm(packed_rows)


class BlockedCSR:
    """A square CSR matrix split into a ``P x P`` grid of analysed blocks."""

    def __init__(self, matrix: CSRMatrix, bounds: Sequence[int]) -> None:
        if matrix.n_rows != matrix.n_cols:
            raise ValueError(
                f"blocked analysis expects a square matrix, got {matrix.shape}")
        bounds = _check_bounds(np.asarray(bounds), matrix.n_rows)
        self.matrix = matrix
        self.bounds = bounds
        self.nblocks = int(bounds.size - 1)
        self._blocks: List[List[SparseBlock]] = []
        for i in range(self.nblocks):
            row_lo, row_hi = int(bounds[i]), int(bounds[i + 1])
            block_row = matrix.row_slice(row_lo, row_hi)
            row_blocks: List[SparseBlock] = []
            for j in range(self.nblocks):
                col_lo, col_hi = int(bounds[j]), int(bounds[j + 1])
                # Restrict to the block's column range via column_select on
                # the contiguous range, which keeps local column numbering.
                cols = np.arange(col_lo, col_hi, dtype=np.int64)
                full = block_row.column_select(cols)
                nnz_cols = full.nonzero_columns()
                compact = full.column_select(nnz_cols)
                row_blocks.append(SparseBlock(
                    row_block=i, col_block=j, full=full, compact=compact,
                    nnz_cols_local=nnz_cols, col_offset=col_lo))
            self._blocks.append(row_blocks)

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, matrix: CSRMatrix, nblocks: int) -> "BlockedCSR":
        """Split into ``nblocks`` balanced contiguous block rows/columns."""
        return cls(matrix, block_bounds(matrix.n_rows, nblocks))

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def block(self, i: int, j: int) -> SparseBlock:
        if not (0 <= i < self.nblocks and 0 <= j < self.nblocks):
            raise ValueError(f"block ({i}, {j}) out of range for "
                             f"{self.nblocks} blocks")
        return self._blocks[i][j]

    def block_size(self, i: int) -> int:
        return int(self.bounds[i + 1] - self.bounds[i])

    def nnz_cols(self, i: int, j: int) -> np.ndarray:
        """``NnzCols(i, j)`` in block-``j``-local numbering."""
        return self.block(i, j).nnz_cols_local

    # ------------------------------------------------------------------
    # Communication-volume queries (rows of H)
    # ------------------------------------------------------------------
    def needed_rows_matrix(self) -> np.ndarray:
        """``(P, P)`` matrix whose ``[i, j]`` entry is ``|NnzCols(i, j)|``
        for ``i != j`` — the sparsity-aware communication requirement."""
        out = np.zeros((self.nblocks, self.nblocks), dtype=np.int64)
        for i in range(self.nblocks):
            for j in range(self.nblocks):
                if i != j:
                    out[i, j] = self.block(i, j).n_needed_rows
        return out

    def oblivious_rows_matrix(self) -> np.ndarray:
        """Rows moved by the sparsity-oblivious algorithm: every process
        receives every other block row in full."""
        sizes = np.diff(self.bounds)
        out = np.tile(sizes, (self.nblocks, 1)).astype(np.int64)
        np.fill_diagonal(out, 0)
        return out

    def send_volumes(self) -> np.ndarray:
        """Per-block *send* volume of the sparsity-aware exchange (rows)."""
        return self.needed_rows_matrix().sum(axis=0)

    def recv_volumes(self) -> np.ndarray:
        """Per-block *receive* volume of the sparsity-aware exchange (rows)."""
        return self.needed_rows_matrix().sum(axis=1)

    def total_volume(self) -> int:
        """Total rows of H exchanged per sparsity-aware SpMM."""
        return int(self.needed_rows_matrix().sum())

    def savings_ratio(self) -> float:
        """Oblivious volume divided by sparsity-aware volume (>= 1)."""
        aware = self.total_volume()
        oblivious = int(self.oblivious_rows_matrix().sum())
        if aware == 0:
            return float("inf") if oblivious > 0 else 1.0
        return oblivious / aware

    # ------------------------------------------------------------------
    # Whole-matrix SpMM through the blocks (reference / testing path)
    # ------------------------------------------------------------------
    def spmm(self, dense: np.ndarray, use_compact: bool = True) -> np.ndarray:
        """``A @ H`` computed block by block.

        ``use_compact=True`` exercises the sparsity-aware local path
        (compact block times packed rows); ``False`` exercises the
        oblivious path.  Both must agree with ``self.matrix.spmm``.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.matrix.n_cols:
            raise ValueError(
                f"dense operand has {dense.shape[0]} rows, expected "
                f"{self.matrix.n_cols}")
        f = dense.shape[1]
        out = np.zeros((self.matrix.n_rows, f), dtype=np.float64)
        for i in range(self.nblocks):
            row_lo, row_hi = int(self.bounds[i]), int(self.bounds[i + 1])
            acc = np.zeros((row_hi - row_lo, f), dtype=np.float64)
            for j in range(self.nblocks):
                blk = self.block(i, j)
                if blk.nnz == 0:
                    continue
                col_lo, col_hi = int(self.bounds[j]), int(self.bounds[j + 1])
                h_j = dense[col_lo:col_hi]
                if use_compact:
                    acc += blk.multiply_compact(h_j[blk.nnz_cols_local])
                else:
                    acc += blk.multiply_full(h_j)
            out[row_lo:row_hi] = acc
        return out
