"""From-scratch sparse matrix substrate.

The distributed algorithms in :mod:`repro.core` use ``scipy.sparse`` for
their local kernels (the paper uses cuSPARSE); this package provides an
independent, pure-NumPy implementation of everything those algorithms
actually need — COO/CSR containers, SpMM/SpMV, transposition, block
splitting, column compaction and ``NnzCols`` analysis — so the reproduction
does not *depend* on scipy for its core data structure, and so every kernel
has a second implementation to property-test against.

Layout:

* :mod:`repro.sparse.kernels` — raw-array kernels (fully vectorised),
* :mod:`repro.sparse.coo`     — :class:`COOMatrix` construction format,
* :mod:`repro.sparse.csr`     — :class:`CSRMatrix` compute format,
* :mod:`repro.sparse.blocked` — :class:`BlockedCSR` block-grid analysis
  (the ``NnzCols`` structures of the paper),
* :mod:`repro.sparse.ops`     — graph helpers (GCN normalisation,
  Laplacian, degrees) on the from-scratch containers.
"""

from .blocked import BlockedCSR, SparseBlock, block_bounds
from .coo import COOMatrix
from .csr import CSRMatrix
from .ops import (add_self_loops, degrees, gcn_normalize, is_symmetric,
                  laplacian, row_normalize)

__all__ = [
    "BlockedCSR", "SparseBlock", "block_bounds",
    "COOMatrix",
    "CSRMatrix",
    "add_self_loops", "degrees", "gcn_normalize", "is_symmetric",
    "laplacian", "row_normalize",
]
