"""Graph-oriented operations on the from-scratch sparse containers.

These mirror the helpers in :mod:`repro.graphs.adjacency` (which operate on
``scipy.sparse`` matrices) for users who work entirely with
:class:`~repro.sparse.csr.CSRMatrix` — most importantly the symmetric GCN
normalisation ``D^{-1/2} (A + I) D^{-1/2}`` the models train on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix
from . import kernels

__all__ = [
    "add_self_loops",
    "degrees",
    "gcn_normalize",
    "is_symmetric",
    "laplacian",
    "row_normalize",
]


def degrees(matrix: CSRMatrix) -> np.ndarray:
    """Weighted degree (row sum) of every vertex."""
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("degrees are defined for square adjacency matrices")
    ones = np.ones(matrix.n_cols, dtype=np.float64)
    return matrix.spmv(ones)


def is_symmetric(matrix: CSRMatrix, tol: float = 0.0) -> bool:
    """Whether ``A == A^T`` within ``tol`` (dense check; small matrices)."""
    if matrix.n_rows != matrix.n_cols:
        return False
    dense = matrix.to_dense()
    return bool(np.allclose(dense, dense.T, atol=tol, rtol=0.0))


def add_self_loops(matrix: CSRMatrix, weight: float = 1.0) -> CSRMatrix:
    """``A + weight * I`` (existing diagonal entries are summed with the loop)."""
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("self loops require a square matrix")
    n = matrix.n_rows
    rows = np.concatenate([kernels.expand_indptr(matrix.indptr),
                           np.arange(n, dtype=np.int64)])
    cols = np.concatenate([matrix.indices,
                           np.arange(n, dtype=np.int64)])
    data = np.concatenate([matrix.data, np.full(n, float(weight))])
    return COOMatrix((n, n), rows, cols, data).to_csr()


def gcn_normalize(matrix: CSRMatrix, add_loops: bool = True) -> CSRMatrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Matches :func:`repro.graphs.adjacency.gcn_normalize` numerically (the
    property tests assert this), but uses only the from-scratch kernels.
    """
    a_hat = add_self_loops(matrix) if add_loops else matrix
    deg = degrees(a_hat)
    inv_sqrt = np.zeros_like(deg)
    positive = deg > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(deg[positive])
    return a_hat.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


def row_normalize(matrix: CSRMatrix) -> CSRMatrix:
    """Row-stochastic normalisation ``D^{-1} A`` (GraphSAGE mean aggregator)."""
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("row normalisation requires a square matrix")
    deg = degrees(matrix)
    inv = np.zeros_like(deg)
    positive = deg > 0
    inv[positive] = 1.0 / deg[positive]
    return matrix.scale_rows(inv)


def laplacian(matrix: CSRMatrix, normalized: bool = False) -> CSRMatrix:
    """Combinatorial (``D - A``) or symmetric-normalised graph Laplacian.

    Used by the spectral partitioner's Fiedler-vector computation.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("the Laplacian requires a square matrix")
    n = matrix.n_rows
    deg = degrees(matrix)
    diag_rows = np.arange(n, dtype=np.int64)
    if not normalized:
        rows = np.concatenate([diag_rows, kernels.expand_indptr(matrix.indptr)])
        cols = np.concatenate([diag_rows, matrix.indices])
        data = np.concatenate([deg, -matrix.data])
        return COOMatrix((n, n), rows, cols, data).to_csr()
    inv_sqrt = np.zeros_like(deg)
    positive = deg > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(deg[positive])
    norm_adj = matrix.scale_rows(inv_sqrt).scale_cols(inv_sqrt)
    rows = np.concatenate([diag_rows, kernels.expand_indptr(norm_adj.indptr)])
    cols = np.concatenate([diag_rows, norm_adj.indices])
    data = np.concatenate([np.where(deg > 0, 1.0, 0.0), -norm_adj.data])
    return COOMatrix((n, n), rows, cols, data).to_csr()
