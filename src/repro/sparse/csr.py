"""Compressed-sparse-row matrix container.

:class:`CSRMatrix` wraps the raw-array kernels of
:mod:`repro.sparse.kernels` in an object with the operations the
sparsity-aware SpMM algorithms need:

* ``spmm`` / ``spmv`` / ``@``      — the local multiply (cuSPARSE stand-in),
* ``row_slice``                    — extract a block row,
* ``column_select``                — compact a block to its nonzero columns,
* ``nonzero_columns``              — the ``NnzCols`` index set,
* ``permute_symmetric``            — apply a partitioner's relabelling,
* ``transpose``, ``scale_rows/cols``, ``diagonal`` — utilities used by the
  GCN normalisation.

The container is validated on construction (monotone ``indptr``, in-range
indices), is immutable by convention (every operation returns a new
matrix), and converts losslessly to and from ``scipy.sparse``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from . import kernels

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in CSR format backed by plain NumPy arrays."""

    def __init__(self, shape: Tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray,
                 check: bool = True) -> None:
        self.shape: Tuple[int, int] = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if check:
            self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"shape must be non-negative, got {self.shape}")
        if self.indptr.ndim != 1 or self.indptr.size != n_rows + 1:
            raise ValueError(
                f"indptr must have length {n_rows + 1}, got {self.indptr.size}")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ValueError(
                f"indices/data must have length indptr[-1] = {nnz}")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError(f"column indices must lie in [0, {n_cols})")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "CSRMatrix":
        csr = matrix.tocsr()
        csr.sort_indices()
        return cls(csr.shape, csr.indptr.astype(np.int64),
                   csr.indices.astype(np.int64),
                   csr.data.astype(np.float64), check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        indptr, indices, data = kernels.coo_to_csr_arrays(
            dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols],
            sum_duplicates=False)
        return cls(dense.shape, indptr, indices, data, check=False)

    @classmethod
    def from_coo_arrays(cls, shape: Tuple[int, int], rows: np.ndarray,
                        cols: np.ndarray, data: Optional[np.ndarray] = None
                        ) -> "CSRMatrix":
        if data is None:
            data = np.ones(np.asarray(rows).shape, dtype=np.float64)
        indptr, indices, vals = kernels.coo_to_csr_arrays(
            shape[0], shape[1], rows, cols, data, sum_duplicates=True)
        return cls(shape, indptr, indices, vals, check=False)

    @classmethod
    def eye(cls, n: int, value: float = 1.0) -> "CSRMatrix":
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.full(n, float(value))
        return cls((n, n), indptr, indices, data, check=False)

    @classmethod
    def zeros(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        return cls(shape, np.zeros(shape[0] + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64),
                   check=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_nnz(self) -> np.ndarray:
        """Stored nonzeros per row."""
        return kernels.csr_row_nnz(self.indptr)

    def col_nnz(self) -> np.ndarray:
        """Stored nonzeros per column."""
        return kernels.csr_col_nnz(self.n_cols, self.indices)

    def nonzero_columns(self) -> np.ndarray:
        """Sorted column indices that hold at least one nonzero.

        For an off-diagonal block ``A^T_{ij}`` this is exactly the paper's
        ``NnzCols(i, j)`` — the rows of ``H_j`` the owner of block row ``i``
        must receive.
        """
        return np.flatnonzero(self.col_nnz() > 0).astype(np.int64)

    def diagonal(self) -> np.ndarray:
        n = min(self.shape)
        return kernels.csr_diagonal(self.indptr, self.indices, self.data,
                                    self.n_rows)[:n] if self.n_rows >= n \
            else kernels.csr_diagonal(self.indptr, self.indices, self.data, n)

    # ------------------------------------------------------------------
    # Multiplication
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a dense vector ``x`` of length ``n_cols``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(
                f"vector has shape {x.shape}, expected ({self.n_cols},)")
        return kernels.csr_spmv(self.indptr, self.indices, self.data, x)

    def spmm(self, dense: np.ndarray) -> np.ndarray:
        """``A @ H`` for a dense matrix ``H`` with ``n_cols`` rows."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != self.n_cols:
            raise ValueError(
                f"dense operand has shape {dense.shape}, expected "
                f"({self.n_cols}, f)")
        return kernels.csr_spmm(self.indptr, self.indices, self.data, dense)

    def __matmul__(self, other):
        other = np.asarray(other, dtype=np.float64) if not isinstance(
            other, CSRMatrix) else other
        if isinstance(other, CSRMatrix):
            raise TypeError("sparse-sparse products are not supported; "
                            "convert one operand to dense")
        if other.ndim == 1:
            return self.spmv(other)
        return self.spmm(other)

    # ------------------------------------------------------------------
    # Structural transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        indptr, indices, data = kernels.csr_transpose_arrays(
            self.n_rows, self.n_cols, self.indptr, self.indices, self.data)
        return CSRMatrix((self.n_cols, self.n_rows), indptr, indices, data,
                         check=False)

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Rows ``[start, stop)`` as a new matrix of full width."""
        indptr, indices, data = kernels.csr_row_slice_arrays(
            self.indptr, self.indices, self.data, start, stop)
        return CSRMatrix((stop - start, self.n_cols), indptr, indices, data,
                         check=False)

    def column_select(self, columns: Sequence[int]) -> "CSRMatrix":
        """Restrict to a sorted subset of columns, renumbered to 0..k-1."""
        columns = np.asarray(columns, dtype=np.int64)
        indptr, indices, data = kernels.csr_column_select_arrays(
            self.n_cols, self.indptr, self.indices, self.data, columns)
        return CSRMatrix((self.n_rows, int(columns.size)), indptr, indices,
                         data, check=False)

    def compact_columns(self) -> Tuple["CSRMatrix", np.ndarray]:
        """Drop empty columns; returns ``(compacted, kept_column_indices)``."""
        cols = self.nonzero_columns()
        return self.column_select(cols), cols

    def permute_symmetric(self, perm: np.ndarray) -> "CSRMatrix":
        """``P A P^T`` for a square matrix, with ``perm[old] = new``."""
        if self.n_rows != self.n_cols:
            raise ValueError("symmetric permutation requires a square matrix")
        indptr, indices, data = kernels.csr_permute_symmetric_arrays(
            self.indptr, self.indices, self.data, perm)
        return CSRMatrix(self.shape, indptr, indices, data, check=False)

    def scale_rows(self, scale: np.ndarray) -> "CSRMatrix":
        """``diag(scale) @ A``."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.n_rows,):
            raise ValueError(f"scale must have length {self.n_rows}")
        data = kernels.csr_scale_rows(self.indptr, self.data, scale)
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         data, check=False)

    def scale_cols(self, scale: np.ndarray) -> "CSRMatrix":
        """``A @ diag(scale)``."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.n_cols,):
            raise ValueError(f"scale must have length {self.n_cols}")
        data = kernels.csr_scale_cols(self.indices, self.data, scale)
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         data, check=False)

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop stored entries with magnitude ``<= tol``."""
        indptr, indices, data = kernels.csr_prune_zeros(
            self.indptr, self.indices, self.data, tol=tol)
        return CSRMatrix(self.shape, indptr, indices, data, check=False)

    def sorted_indices(self) -> "CSRMatrix":
        """A copy with column indices sorted within every row."""
        indptr, indices, data = kernels.sort_csr_indices(
            self.indptr, self.indices, self.data)
        return CSRMatrix(self.shape, indptr, indices, data, check=False)

    # ------------------------------------------------------------------
    # Conversions / comparisons
    # ------------------------------------------------------------------
    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix((self.data.copy(), self.indices.copy(),
                              self.indptr.copy()), shape=self.shape)

    def to_coo(self) -> "COOMatrix":
        from .coo import COOMatrix
        return COOMatrix(self.shape, kernels.expand_indptr(self.indptr),
                         self.indices.copy(), self.data.copy())

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows = kernels.expand_indptr(self.indptr)
        np.add.at(out, (rows, self.indices), self.data)
        return out

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-10,
                 atol: float = 1e-12) -> bool:
        """Numerical equality of the represented matrices (not the storage)."""
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(),
                           rtol=rtol, atol=atol)

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), check=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
