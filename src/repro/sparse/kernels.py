"""Low-level, NumPy-vectorised sparse kernels.

The paper's local computation runs on cuSPARSE (``csrmm2``); this module is
the reproduction's from-scratch substitute.  Every kernel operates on raw
CSR/COO component arrays (``indptr``, ``indices``, ``data``) so the
higher-level containers in :mod:`repro.sparse.coo` and
:mod:`repro.sparse.csr` stay thin, and so the kernels can be unit- and
property-tested directly against ``scipy.sparse``.

Implementation notes
--------------------
* All kernels are fully vectorised — no Python-level loop over nonzeros.
  Row reductions (:func:`csr_spmv`, :func:`csr_spmm`, duplicate folding in
  :func:`coo_to_csr_arrays`) run as *segment sums*: one
  ``np.add.reduceat`` over the ``indptr`` boundaries of the non-empty
  rows (:func:`segment_sum`).  ``np.add.at`` — NumPy's unbuffered, and by
  far slowest, reduction primitive — is avoided on every hot path.
* Index arrays use ``int64`` throughout; value arrays use ``float64``
  unless an explicit ``dtype`` is requested (``float32`` halves memory
  traffic for bandwidth-bound multiplies).
* Kernels never mutate their inputs (except explicit ``out=`` buffers).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "expand_indptr",
    "compress_rows",
    "segment_sum",
    "coo_to_csr_arrays",
    "csr_to_coo_rows",
    "csr_spmv",
    "csr_spmm",
    "csr_transpose_arrays",
    "csr_row_slice_arrays",
    "csr_column_select_arrays",
    "csr_permute_symmetric_arrays",
    "csr_row_nnz",
    "csr_col_nnz",
    "csr_diagonal",
    "csr_scale_rows",
    "csr_scale_cols",
    "csr_prune_zeros",
    "sort_csr_indices",
]


# ----------------------------------------------------------------------
# Structural helpers
# ----------------------------------------------------------------------
def expand_indptr(indptr: np.ndarray) -> np.ndarray:
    """Expand a CSR ``indptr`` into one row id per stored nonzero.

    The inverse of :func:`compress_rows`.  For ``indptr = [0, 2, 2, 5]``
    the result is ``[0, 0, 2, 2, 2]``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    nrows = indptr.size - 1
    nnz_per_row = np.diff(indptr)
    if np.any(nnz_per_row < 0):
        raise ValueError("indptr must be non-decreasing")
    return np.repeat(np.arange(nrows, dtype=np.int64), nnz_per_row)


def compress_rows(row_ids: np.ndarray, nrows: int) -> np.ndarray:
    """Build a CSR ``indptr`` from *sorted* per-nonzero row ids."""
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if row_ids.size and (row_ids.min() < 0 or row_ids.max() >= nrows):
        raise ValueError(f"row ids must lie in [0, {nrows})")
    if row_ids.size > 1 and np.any(np.diff(row_ids) < 0):
        raise ValueError("row ids must be sorted to build an indptr")
    counts = np.bincount(row_ids, minlength=nrows)
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def segment_sum(values: np.ndarray, indptr: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Sum contiguous segments of ``values`` delimited by a CSR ``indptr``.

    ``out[i] = values[indptr[i]:indptr[i + 1]].sum(axis=0)`` for every row
    ``i``, with empty segments contributing zero.  Implemented as one
    ``np.add.reduceat`` over the *non-empty* row starts — ``reduceat``
    treats an empty segment as a length-one segment, so empty rows must be
    masked out rather than handed to it.  The per-segment accumulation
    order may differ from a sequential scatter-add (NumPy is free to use
    pairwise/vectorised summation), so results agree with ``np.add.at``
    to floating-point rounding, not bit for bit — same as any other
    reduction-order change.

    ``values`` may be 1-D (SpMV contributions) or 2-D (SpMM contribution
    rows).  ``out`` is an optional preallocated ``(nrows, ...)`` buffer;
    it is fully overwritten (empty rows are zeroed).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    nrows = indptr.size - 1
    shape = (nrows,) + values.shape[1:]
    if out is None:
        out = np.zeros(shape, dtype=values.dtype)
    else:
        if out.shape != shape:
            raise ValueError(f"out has shape {out.shape}, expected {shape}")
        out[...] = 0
    if nrows >= 0 and (int(indptr[0]) != 0 or int(indptr[-1]) != len(values)):
        # reduceat's segments implicitly start at the listed offsets and
        # the last runs to len(values); an indptr not spanning exactly
        # [0, len(values)] would silently drop leading values or fold
        # trailing ones into the last non-empty row instead of failing
        # like the scatter-add did.
        raise ValueError(
            f"indptr must span [0, {len(values)}], got "
            f"[{int(indptr[0])}, {int(indptr[-1])}]")
    nnz_per_row = np.diff(indptr)
    if np.any(nnz_per_row < 0):
        raise ValueError("indptr must be non-decreasing")
    nonempty = np.flatnonzero(nnz_per_row > 0)
    if nonempty.size:
        # Consecutive listed starts delimit the segments; rows between two
        # non-empty rows are empty, so indptr[nonempty[k+1]] is also the
        # end of segment nonempty[k]; the last segment runs to len(values).
        out[nonempty] = np.add.reduceat(values, indptr[nonempty], axis=0)
    return out


def coo_to_csr_arrays(n_rows: int, n_cols: int,
                      rows: np.ndarray, cols: np.ndarray, data: np.ndarray,
                      sum_duplicates: bool = True,
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert COO triplets into CSR component arrays.

    Parameters
    ----------
    sum_duplicates:
        When True (default), repeated ``(row, col)`` entries are summed —
        matching ``scipy.sparse`` conversion semantics.

    Returns
    -------
    (indptr, indices, data)
        CSR arrays with rows sorted and, within each row, columns sorted.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    if not (rows.shape == cols.shape == data.shape):
        raise ValueError("rows, cols and data must have identical shapes")
    if rows.ndim != 1:
        raise ValueError("COO component arrays must be 1-D")
    if rows.size:
        if rows.min() < 0 or rows.max() >= n_rows:
            raise ValueError(f"row indices must lie in [0, {n_rows})")
        if cols.min() < 0 or cols.max() >= n_cols:
            raise ValueError(f"column indices must lie in [0, {n_cols})")

    if rows.size == 0:
        return (np.zeros(n_rows + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))

    # Sort lexicographically by (row, col).
    order = np.lexsort((cols, rows))
    rows, cols, data = rows[order], cols[order], data[order]

    if sum_duplicates:
        keys = rows * np.int64(n_cols) + cols
        new_group = np.empty(keys.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = keys[1:] != keys[:-1]
        # Duplicates are consecutive after the lexsort, so folding them is a
        # segment sum over the group starts (every group is non-empty).
        starts = np.flatnonzero(new_group)
        data = np.add.reduceat(data, starts)
        rows = rows[new_group]
        cols = cols[new_group]

    indptr = compress_rows(rows, n_rows)
    return indptr, cols.copy(), data.copy()


def csr_to_coo_rows(indptr: np.ndarray) -> np.ndarray:
    """Alias of :func:`expand_indptr` (named for the conversion use case)."""
    return expand_indptr(indptr)


# ----------------------------------------------------------------------
# Multiplication kernels
# ----------------------------------------------------------------------
def csr_spmv(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
             x: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """``y = A @ x`` for CSR ``A`` and a dense vector ``x``.

    ``dtype`` selects the compute/output precision (default ``float64``).
    """
    dtype = np.dtype(np.float64 if dtype is None else dtype)
    x = np.asarray(x, dtype=dtype)
    if x.ndim != 1:
        raise ValueError("x must be a 1-D vector (use csr_spmm for matrices)")
    indptr = np.asarray(indptr, dtype=np.int64)
    contrib = np.asarray(data, dtype=dtype) * x[np.asarray(indices)]
    return segment_sum(contrib, indptr)


def csr_spmm(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
             dense: np.ndarray, dtype: Optional[np.dtype] = None,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """``Z = A @ H`` for CSR ``A`` (``m x k``) and dense ``H`` (``k x f``).

    This is the reproduction's stand-in for cuSPARSE ``csrmm2``: the
    nonzero contributions ``a_ij * H[j, :]`` are formed in one shot and
    reduced into the output rows with a segment sum over the ``indptr``
    boundaries (:func:`segment_sum`) — the sorted-reduction formulation
    of the scatter-add, several times faster than ``np.add.at``.

    ``dtype`` selects the compute/output precision (default ``float64``);
    ``out`` is an optional preallocated ``(m, f)`` output buffer of that
    dtype (fully overwritten), so compiled callers can keep the hot path
    allocation-free.
    """
    dtype = np.dtype(np.float64 if dtype is None else dtype)
    dense = np.asarray(dense, dtype=dtype)
    if dense.ndim != 2:
        raise ValueError("dense operand must be 2-D")
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    data = np.asarray(data, dtype=dtype)
    nrows = indptr.size - 1
    if indices.size == 0:
        if out is None:
            return np.zeros((nrows, dense.shape[1]), dtype=dtype)
        out[...] = 0
        return out
    if indices.max(initial=-1) >= dense.shape[0]:
        raise ValueError(
            f"column index {int(indices.max())} out of range for a dense "
            f"operand with {dense.shape[0]} rows")
    contrib = data[:, None] * dense[indices]
    return segment_sum(contrib, indptr, out=out)


# ----------------------------------------------------------------------
# Structural transformations
# ----------------------------------------------------------------------
def csr_transpose_arrays(n_rows: int, n_cols: int,
                         indptr: np.ndarray, indices: np.ndarray,
                         data: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Transpose CSR arrays (returns CSR arrays of the transpose).

    Implemented as a counting sort on the column index — the classical
    ``csr_tocsc`` algorithm — so it runs in ``O(nnz + n)``.
    """
    rows = expand_indptr(indptr)
    cols = np.asarray(indices, dtype=np.int64)
    vals = np.asarray(data, dtype=np.float64)
    # Stable sort by column: within a column, original row order (already
    # ascending) is preserved, giving sorted indices in the transpose.
    order = np.argsort(cols, kind="stable")
    t_indptr = compress_rows(cols[order], n_cols)
    return t_indptr, rows[order].copy(), vals[order].copy()


def csr_row_slice_arrays(indptr: np.ndarray, indices: np.ndarray,
                         data: np.ndarray, start: int, stop: int
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rows ``[start, stop)`` of a CSR matrix, as CSR arrays."""
    indptr = np.asarray(indptr, dtype=np.int64)
    nrows = indptr.size - 1
    if not (0 <= start <= stop <= nrows):
        raise ValueError(f"row slice [{start}, {stop}) out of range for "
                         f"{nrows} rows")
    lo, hi = int(indptr[start]), int(indptr[stop])
    new_indptr = indptr[start:stop + 1] - lo
    return (new_indptr.astype(np.int64),
            np.asarray(indices[lo:hi], dtype=np.int64).copy(),
            np.asarray(data[lo:hi], dtype=np.float64).copy())


def csr_column_select_arrays(n_cols: int, indptr: np.ndarray,
                             indices: np.ndarray, data: np.ndarray,
                             columns: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Restrict a CSR matrix to a sorted subset of columns and renumber them.

    This is the *column compaction* the sparsity-aware algorithms apply to
    off-diagonal blocks: the result has ``len(columns)`` columns and its
    column ``k`` corresponds to original column ``columns[k]``.

    Nonzeros outside ``columns`` are dropped.
    """
    columns = np.asarray(columns, dtype=np.int64)
    if columns.size and (columns.min() < 0 or columns.max() >= n_cols):
        raise ValueError(f"selected columns must lie in [0, {n_cols})")
    if columns.size > 1 and np.any(np.diff(columns) <= 0):
        raise ValueError("selected columns must be strictly increasing")
    indices = np.asarray(indices, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)

    # Map original column -> compacted column (or -1 if dropped).
    col_map = np.full(n_cols, -1, dtype=np.int64)
    col_map[columns] = np.arange(columns.size, dtype=np.int64)
    mapped = col_map[indices] if indices.size else indices
    keep = mapped >= 0

    rows = expand_indptr(indptr)[keep]
    new_indptr = compress_rows(rows, np.asarray(indptr).size - 1)
    return new_indptr, mapped[keep].copy(), data[keep].copy()


def csr_permute_symmetric_arrays(indptr: np.ndarray, indices: np.ndarray,
                                 data: np.ndarray, perm: np.ndarray
                                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric permutation ``P A P^T`` where ``perm[old] = new``.

    The result's row ``perm[i]`` / column ``perm[j]`` holds the value of the
    original entry ``(i, j)`` — exactly the relabelling applied after graph
    partitioning.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    n = indptr.size - 1
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (n,):
        raise ValueError(f"permutation must have length {n}")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm is not a permutation of 0..n-1")
    rows = perm[expand_indptr(indptr)]
    cols = perm[np.asarray(indices, dtype=np.int64)]
    return coo_to_csr_arrays(n, n, rows, cols,
                             np.asarray(data, dtype=np.float64),
                             sum_duplicates=False)


# ----------------------------------------------------------------------
# Element-wise / diagnostic kernels
# ----------------------------------------------------------------------
def csr_row_nnz(indptr: np.ndarray) -> np.ndarray:
    """Number of stored nonzeros in each row."""
    return np.diff(np.asarray(indptr, dtype=np.int64))


def csr_col_nnz(n_cols: int, indices: np.ndarray) -> np.ndarray:
    """Number of stored nonzeros in each column."""
    return np.bincount(np.asarray(indices, dtype=np.int64), minlength=n_cols)


def csr_diagonal(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
                 n: int) -> np.ndarray:
    """The main diagonal as a dense vector (missing entries are zero)."""
    rows = expand_indptr(indptr)
    indices = np.asarray(indices, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    diag = np.zeros(n, dtype=np.float64)
    on_diag = rows == indices
    # If duplicates exist they sum, matching scipy's .diagonal() on
    # canonical matrices (which have no duplicates anyway).
    np.add.at(diag, rows[on_diag], data[on_diag])
    return diag


def csr_scale_rows(indptr: np.ndarray, data: np.ndarray,
                   scale: np.ndarray) -> np.ndarray:
    """Return ``data`` of ``diag(scale) @ A`` (row scaling)."""
    scale = np.asarray(scale, dtype=np.float64)
    rows = expand_indptr(indptr)
    return np.asarray(data, dtype=np.float64) * scale[rows]


def csr_scale_cols(indices: np.ndarray, data: np.ndarray,
                   scale: np.ndarray) -> np.ndarray:
    """Return ``data`` of ``A @ diag(scale)`` (column scaling)."""
    scale = np.asarray(scale, dtype=np.float64)
    return np.asarray(data, dtype=np.float64) * scale[np.asarray(indices)]


def csr_prune_zeros(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
                    tol: float = 0.0
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop stored entries with ``|value| <= tol`` (explicit zeros)."""
    data = np.asarray(data, dtype=np.float64)
    keep = np.abs(data) > tol
    rows = expand_indptr(indptr)[keep]
    new_indptr = compress_rows(rows, np.asarray(indptr).size - 1)
    return new_indptr, np.asarray(indices)[keep].copy(), data[keep].copy()


def sort_csr_indices(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort column indices within every row (stable on values)."""
    indptr = np.asarray(indptr, dtype=np.int64)
    rows = expand_indptr(indptr)
    indices = np.asarray(indices, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    order = np.lexsort((indices, rows))
    return indptr.copy(), indices[order].copy(), data[order].copy()
