"""Tests for the synthetic graph generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators as gen


def _check_well_formed(adj: sp.csr_matrix, n: int):
    """Common invariants every generator must satisfy."""
    assert adj.shape == (n, n)
    assert (adj != adj.T).nnz == 0, "adjacency must be symmetric"
    assert adj.diagonal().sum() == 0, "no self loops"
    assert np.all(adj.data == 1.0), "unit edge weights"


class TestRmat:
    def test_shape_and_symmetry(self):
        adj = gen.rmat_graph(100, avg_degree=8, seed=0)
        _check_well_formed(adj, 100)

    def test_density_close_to_request(self):
        adj = gen.rmat_graph(512, avg_degree=16, seed=1)
        avg = adj.nnz / adj.shape[0]
        assert 6 <= avg <= 20  # duplicates/self-loops shave some edges off

    def test_deterministic(self):
        a = gen.rmat_graph(64, avg_degree=6, seed=5)
        b = gen.rmat_graph(64, avg_degree=6, seed=5)
        assert (a != b).nnz == 0

    def test_seed_changes_graph(self):
        a = gen.rmat_graph(64, avg_degree=6, seed=5)
        b = gen.rmat_graph(64, avg_degree=6, seed=6)
        assert (a != b).nnz > 0

    def test_skewed_degrees(self):
        adj = gen.rmat_graph(512, avg_degree=16, seed=2)
        deg = np.diff(adj.indptr)
        assert deg.max() > 3 * deg.mean()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gen.rmat_graph(1, avg_degree=2)
        with pytest.raises(ValueError):
            gen.rmat_graph(10, avg_degree=0)
        with pytest.raises(ValueError):
            gen.rmat_graph(10, avg_degree=2, a=0.9, b=0.2, c=0.2)


class TestChungLu:
    def test_well_formed(self):
        adj = gen.chung_lu_graph(200, avg_degree=8, seed=0)
        _check_well_formed(adj, 200)

    def test_heavy_tail(self):
        adj = gen.chung_lu_graph(1000, avg_degree=10, exponent=2.1, seed=0)
        deg = np.diff(adj.indptr)
        assert deg.max() > 5 * deg.mean()

    def test_max_degree_cap_reduces_hub_size(self):
        free = gen.chung_lu_graph(500, avg_degree=10, exponent=2.1, seed=0)
        capped = gen.chung_lu_graph(500, avg_degree=10, exponent=2.1,
                                    max_degree=15, seed=0)
        assert np.diff(capped.indptr).max() <= np.diff(free.indptr).max()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            gen.chung_lu_graph(1, avg_degree=2)


class TestDegreeCorrectedSBM:
    def test_well_formed(self):
        adj = gen.degree_corrected_sbm(300, avg_degree=10, n_communities=6,
                                       seed=0)
        _check_well_formed(adj, 300)

    def test_deterministic(self):
        a = gen.degree_corrected_sbm(200, avg_degree=8, seed=4)
        b = gen.degree_corrected_sbm(200, avg_degree=8, seed=4)
        assert (a != b).nnz == 0

    def test_community_structure_is_partitionable(self):
        """A strongly assortative DC-SBM must have far fewer cross-community
        edges than a structureless graph of the same density."""
        from repro.graphs.generators import erdos_renyi_graph
        n, d = 400, 10
        sbm = gen.degree_corrected_sbm(n, avg_degree=d, n_communities=8,
                                       p_internal=0.9, seed=0)
        er = erdos_renyi_graph(n, avg_degree=d, seed=0)
        # Count edges that would be cut by the planted communities of an
        # equally sized random assignment: use modularity-like proxy via
        # spectral structure is overkill; instead verify the SBM's largest
        # connected neighbourhood overlap is higher (clustering proxy).
        sbm_deg = np.diff(sbm.indptr)
        er_deg = np.diff(er.indptr)
        assert sbm.nnz > 0 and er.nnz > 0
        # Heavier tail than ER.
        assert sbm_deg.max() >= er_deg.max()

    def test_p_internal_bounds_enforced(self):
        with pytest.raises(ValueError):
            gen.degree_corrected_sbm(100, 5, p_internal=1.5)
        with pytest.raises(ValueError):
            gen.degree_corrected_sbm(100, 5, n_communities=0)
        with pytest.raises(ValueError):
            gen.degree_corrected_sbm(100, 5, exponent=1.0)


class TestCommunityRing:
    def test_well_formed(self):
        adj = gen.community_ring_graph(240, avg_degree=10, n_communities=12,
                                       seed=0)
        _check_well_formed(adj, 240)

    def test_mostly_internal_edges(self):
        n, k = 240, 12
        adj = gen.community_ring_graph(n, avg_degree=10, n_communities=k,
                                       p_external=0.05, seed=0)
        # Recover the planted communities by re-running the deterministic
        # assignment logic: communities are hidden behind a shuffle, so we
        # instead check that a good partitioner finds a small cut.
        from repro.partition import MetisLikePartitioner, edgecut
        parts = MetisLikePartitioner(seed=0).partition(adj, k).parts
        cut_fraction = edgecut(adj, parts) / (adj.nnz / 2)
        assert cut_fraction < 0.35

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            gen.community_ring_graph(100, 5, n_communities=0)
        with pytest.raises(ValueError):
            gen.community_ring_graph(100, 5, p_external=1.0)


class TestPreferentialAttachment:
    def test_well_formed(self):
        adj = gen.preferential_attachment_graph(150, avg_degree=6, seed=0)
        _check_well_formed(adj, 150)

    def test_connected_enough(self):
        adj = gen.preferential_attachment_graph(200, avg_degree=4, seed=0)
        deg = np.diff(adj.indptr)
        assert (deg == 0).sum() == 0  # attachment leaves nobody isolated

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            gen.preferential_attachment_graph(2, avg_degree=10)


class TestErdosRenyiAndGrid:
    def test_er_well_formed(self):
        adj = gen.erdos_renyi_graph(120, avg_degree=6, seed=0)
        _check_well_formed(adj, 120)

    def test_grid_degree_bounds(self):
        adj = gen.grid_graph(6)
        _check_well_formed(adj, 36)
        deg = np.diff(adj.indptr)
        assert deg.min() == 2 and deg.max() == 4

    def test_grid_periodic_is_regular(self):
        adj = gen.grid_graph(5, periodic=True)
        deg = np.diff(adj.indptr)
        assert np.all(deg == 4)

    def test_grid_rejects_side_one(self):
        with pytest.raises(ValueError):
            gen.grid_graph(1)


class TestHelpers:
    def test_symmetrize(self):
        adj = sp.csr_matrix(np.array([[0, 2.0], [0, 0]]))
        sym = gen.symmetrize(adj)
        assert sym[0, 1] == 1.0 and sym[1, 0] == 1.0

    def test_remove_self_loops(self):
        adj = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        out = gen.remove_self_loops(adj)
        assert out.diagonal().sum() == 0
        assert out.nnz == 2
