"""Tests for the wait-free gradient exchange (repro.core.gradsync).

Covers the three mechanisms — overlap, fusion buckets, compressed wires —
at the unit level (codec round trips, bucket packing) and end-to-end
(bit-identity of the overlapped float32 exchange on every backend,
loss-trajectory tolerance of the reduced-precision wires).
"""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import DistTrainConfig, train_distributed
from repro.core.gradsync import (GradientExchanger, PendingGradients,
                                 bucket_bytes_for_overhead, decode_bfloat16,
                                 default_bucket_bytes, encode_bfloat16)
from repro.graphs import load_dataset

BACKENDS = ("sim", "threaded", "process")


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale=0.05, n_features=12, n_classes=4,
                        seed=3)


def _train(dataset, backend="sim", **overrides):
    cfg = DistTrainConfig(n_ranks=4, partitioner=None, epochs=4,
                          learning_rate=0.1, seed=0, backend=backend,
                          **overrides)
    return train_distributed(dataset, cfg, eval_every=0)


def _losses(result):
    return [h.loss for h in result.history]


# ----------------------------------------------------------------------
# bfloat16 wire codec
# ----------------------------------------------------------------------
class TestBf16Codec:
    def test_exactly_representable_values_round_trip(self):
        # Powers of two and small sums with <= 8 mantissa bits are exact.
        x = np.array([0.0, 1.0, -2.0, 0.5, 1.5, -0.375, 256.0, 2.0 ** 100],
                     dtype=np.float64)
        out = decode_bfloat16(encode_bfloat16(x), dtype=np.float64)
        np.testing.assert_array_equal(out, x)

    def test_relative_error_bounded_by_half_ulp(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096).astype(np.float32)
        out = decode_bfloat16(encode_bfloat16(x))
        # bf16 stores 7 mantissa bits: RNE error <= 2^-8 relative.
        rel = np.abs(out - x) / np.abs(x)
        assert rel.max() <= 2.0 ** -8 + 1e-12

    def test_round_to_nearest_even_on_ties(self):
        # 0x3F808000 is exactly halfway between bf16 0x3F80 and 0x3F81:
        # ties go to the even mantissa (0x3F80).  0x3F818000 ties up to
        # 0x3F82 (even) rather than down to 0x3F81 (odd).
        ties = np.array([0x3F808000, 0x3F818000], dtype=np.uint32)
        bits = encode_bfloat16(ties.view(np.float32))
        np.testing.assert_array_equal(bits,
                                      np.array([0x3F80, 0x3F82], np.uint16))

    def test_nan_maps_to_canonical_quiet_nan(self):
        bits = encode_bfloat16(np.array([np.nan, 1.0], dtype=np.float32))
        assert bits[0] == np.uint16(0x7FC0)
        out = decode_bfloat16(bits)
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_decode_rejects_non_uint16(self):
        with pytest.raises(ValueError):
            decode_bfloat16(np.zeros(4, dtype=np.float32))

    def test_shapes_preserved(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        bits = encode_bfloat16(x)
        assert bits.shape == x.shape
        assert decode_bfloat16(bits).shape == x.shape


# ----------------------------------------------------------------------
# Bucket packing (exchanger round trips on the sim backend)
# ----------------------------------------------------------------------
def _random_contribs(rng, nranks, shapes):
    """Per-layer lists of one contribution array per rank."""
    return [[rng.standard_normal(shape) for _ in range(nranks)]
            for shape in shapes]


def _expected_sums(contribs):
    return [np.sum(np.stack(per_layer), axis=0) for per_layer in contribs]


class TestBucketPacking:
    SHAPES = [(3, 5), (7,), (2, 2, 2), (1,), (4, 6)]

    def _run_session(self, overlap, bucket_bytes, contribs):
        comm = make_communicator(len(contribs[0]))
        x = GradientExchanger(comm, np.float64, overlap=overlap,
                              bucket_bytes=bucket_bytes)
        session = x.open(len(contribs))
        for i, per_layer in enumerate(contribs):
            session.post(i, per_layer)
        session.close()
        return session.drain()

    @pytest.mark.parametrize("overlap", [False, True])
    @pytest.mark.parametrize("bucket_bytes", [0, 1, 64, 10 ** 9])
    def test_round_trip_matches_per_layer_sum(self, overlap, bucket_bytes):
        rng = np.random.default_rng(7)
        contribs = _random_contribs(rng, 4, self.SHAPES)
        grads = self._run_session(overlap, bucket_bytes, contribs)
        assert len(grads) == len(self.SHAPES)
        for got, want in zip(grads, _expected_sums(contribs)):
            np.testing.assert_array_equal(got, want)

    def test_fusion_is_bit_identical_to_per_layer(self):
        rng = np.random.default_rng(11)
        contribs = _random_contribs(rng, 4, self.SHAPES)
        unfused = self._run_session(False, 0, contribs)
        fused = self._run_session(True, 10 ** 9, contribs)
        for a, b in zip(unfused, fused):
            np.testing.assert_array_equal(a, b)

    def test_out_of_order_posts_unpack_by_index(self):
        rng = np.random.default_rng(13)
        contribs = _random_contribs(rng, 2, self.SHAPES)
        comm = make_communicator(2)
        x = GradientExchanger(comm, np.float64, overlap=True,
                              bucket_bytes=10 ** 9)
        session = x.open(len(contribs))
        order = [4, 0, 3, 1, 2]
        for i in order:
            session.post(i, contribs[i])
        grads = PendingGradients(session)
        for i, want in enumerate(_expected_sums(contribs)):
            np.testing.assert_array_equal(grads[i], want)

    def test_pending_gradients_is_a_lazy_sequence(self):
        rng = np.random.default_rng(17)
        contribs = _random_contribs(rng, 2, [(2, 3), (4,)])
        comm = make_communicator(2)
        x = GradientExchanger(comm, np.float64, overlap=True)
        session = x.open(2)
        for i, per_layer in enumerate(contribs):
            session.post(i, per_layer)
        pending = PendingGradients(session)
        assert len(pending) == 2
        listed = list(pending)
        assert len(listed) == 2
        # wait() is idempotent: same objects on the second drain.
        assert pending.wait() is pending.wait()

    def test_incomplete_session_raises_on_drain(self):
        comm = make_communicator(2)
        x = GradientExchanger(comm, np.float64)
        session = x.open(3)
        session.post(0, [np.ones(2), np.ones(2)])
        with pytest.raises(RuntimeError):
            session.drain()

    def test_post_after_close_raises(self):
        comm = make_communicator(2)
        x = GradientExchanger(comm, np.float64)
        session = x.open(2)
        session.post(0, [np.ones(2), np.ones(2)])
        session.close()
        with pytest.raises(RuntimeError):
            session.post(1, [np.ones(2), np.ones(2)])

    def test_bad_index_rejected(self):
        comm = make_communicator(2)
        x = GradientExchanger(comm, np.float64)
        session = x.open(2)
        with pytest.raises(ValueError):
            session.post(2, [np.ones(2), np.ones(2)])

    def test_float16_wire_reduces_in_half_precision(self):
        comm = make_communicator(2)
        x = GradientExchanger(comm, np.float64, grad_dtype="float16")
        session = x.open(1)
        contrib = [np.array([1.0, 1e-9]), np.array([1.0, 1e-9])]
        session.post(0, contrib)
        (grad,) = session.drain()
        assert grad.dtype == np.float64
        # 1e-9 underflows the f16 wire; the ones survive exactly.
        assert grad[0] == 2.0 and grad[1] == 0.0

    def test_bfloat16_wire_round_trips_representable_sums(self):
        comm = make_communicator(4)
        x = GradientExchanger(comm, np.float64, grad_dtype="bfloat16")
        session = x.open(1)
        session.post(0, [np.full(8, 0.5) for _ in range(4)])
        (grad,) = session.drain()
        np.testing.assert_array_equal(grad, np.full(8, 2.0))

    def test_transparent_mode_detection(self):
        comm = make_communicator(2)
        assert GradientExchanger(comm, np.float64).transparent
        assert not GradientExchanger(comm, np.float64, overlap=True).transparent
        assert not GradientExchanger(comm, np.float64,
                                     bucket_bytes=64).transparent
        assert not GradientExchanger(comm, np.float64,
                                     grad_dtype="float32").transparent
        # Wire dtype equal to the model dtype stays transparent.
        assert GradientExchanger(comm, np.float32,
                                 grad_dtype="float32").transparent


# ----------------------------------------------------------------------
# Bucket sizing
# ----------------------------------------------------------------------
class TestBucketSizing:
    def test_zero_overhead_means_no_fusion(self):
        assert bucket_bytes_for_overhead(0.0) == 0
        assert bucket_bytes_for_overhead(-1.0) == 0

    def test_monotone_and_capped(self):
        small = bucket_bytes_for_overhead(2.0e-5)
        large = bucket_bytes_for_overhead(2.0e-4)
        assert 0 < small < large
        assert bucket_bytes_for_overhead(1.0) == 1 << 22

    def test_sim_default_comes_from_machine_model(self):
        assert default_bucket_bytes(make_communicator(4)) > 0

    def test_single_rank_needs_no_fusion(self):
        assert default_bucket_bytes(make_communicator(1)) == 0


# ----------------------------------------------------------------------
# End-to-end training equivalence
# ----------------------------------------------------------------------
class TestTrainingEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_overlap_is_bit_identical_at_full_wire_precision(self, dataset,
                                                             backend):
        plain = _train(dataset, backend, dtype="float32")
        waitfree = _train(dataset, backend, dtype="float32",
                          grad_overlap=True, grad_dtype="float32")
        assert _losses(plain) == _losses(waitfree)
        assert plain.final_loss == waitfree.final_loss

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("grad_dtype", ["float16", "bfloat16"])
    def test_reduced_precision_wire_tracks_f64_trajectory(self, dataset,
                                                          backend, grad_dtype):
        exact = _train(dataset, backend)
        compressed = _train(dataset, backend, grad_overlap=True,
                            grad_dtype=grad_dtype)
        for a, b in zip(_losses(exact), _losses(compressed)):
            assert b == pytest.approx(a, rel=1e-3)

    @pytest.mark.parametrize("grad_dtype", ["float16", "bfloat16"])
    def test_compressed_wire_is_backend_independent(self, dataset, grad_dtype):
        runs = [_train(dataset, backend, grad_overlap=True,
                       grad_dtype=grad_dtype) for backend in BACKENDS]
        for other in runs[1:]:
            assert _losses(runs[0]) == _losses(other)

    def test_explicit_bucket_sizes_do_not_change_results(self, dataset):
        base = _train(dataset, grad_overlap=True)
        for bucket in (0, 128, 1 << 20):
            run = _train(dataset, grad_overlap=True, grad_bucket_bytes=bucket)
            assert _losses(run) == _losses(base)


# ----------------------------------------------------------------------
# Simulated-clock accounting
# ----------------------------------------------------------------------
class TestSimAccounting:
    def test_overlap_saves_simulated_time(self, dataset):
        plain = _train(dataset)
        waitfree = _train(dataset, grad_overlap=True)
        assert waitfree.total_time_s < plain.total_time_s

    def test_breakdown_category_tracks_engagement(self, dataset):
        plain = _train(dataset)
        assert "gradsync" not in plain.breakdown
        assert "allreduce" in plain.breakdown
        waitfree = _train(dataset, grad_overlap=True)
        assert "gradsync" in waitfree.breakdown

    def test_grad_summary_reports_the_exchange(self, dataset):
        result = _train(dataset, grad_overlap=True, grad_dtype="bfloat16")
        summary = result.grad_summary
        assert summary["overlap"] is True
        assert summary["wire_dtype"] == "bfloat16"
        assert summary["bucket_bytes"] > 0     # auto-sized when engaged
        assert summary["posts_per_epoch"] == 3.0
        assert summary["wire_MB_per_epoch"] > 0

    def test_transparent_run_reports_no_fusion(self, dataset):
        result = _train(dataset)
        summary = result.grad_summary
        assert summary["overlap"] is False
        assert summary["bucket_bytes"] == 0
