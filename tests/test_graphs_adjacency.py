"""Tests for adjacency utilities (normalisation, permutation)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import adjacency as A
from repro.graphs.generators import erdos_renyi_graph


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(30, avg_degree=4, seed=2)


class TestValidation:
    def test_rejects_dense_input(self):
        with pytest.raises(TypeError):
            A.validate_adjacency(np.eye(3))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            A.validate_adjacency(sp.csr_matrix(np.ones((2, 3))))

    def test_rejects_negative_weights(self):
        mat = sp.csr_matrix(np.array([[0, -1.0], [-1.0, 0]]))
        with pytest.raises(ValueError):
            A.validate_adjacency(mat)

    def test_degrees(self, graph):
        deg = A.degrees(graph)
        assert deg.shape == (30,)
        assert deg.sum() == graph.nnz

    def test_is_symmetric(self, graph):
        assert A.is_symmetric(graph)
        asym = sp.csr_matrix(np.array([[0, 1.0], [0, 0]]))
        assert not A.is_symmetric(asym)


class TestNormalisation:
    def test_add_self_loops(self, graph):
        out = A.add_self_loops(graph)
        assert np.all(out.diagonal() == 1.0)
        assert out.nnz == graph.nnz + graph.shape[0]

    def test_gcn_normalize_row_col_scaling(self, graph):
        norm = A.gcn_normalize(graph)
        # Symmetric normalisation keeps the matrix symmetric and bounded.
        assert A.is_symmetric(norm, tol=1e-12)
        assert norm.data.max() <= 1.0 + 1e-12
        assert norm.data.min() > 0

    def test_gcn_normalize_spectral_property(self):
        # For a k-regular graph with self loops, D^{-1/2} (A+I) D^{-1/2} has
        # constant row sums equal to 1.
        from repro.graphs.generators import grid_graph
        adj = grid_graph(5, periodic=True)
        norm = A.gcn_normalize(adj)
        row_sums = np.asarray(norm.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0, rtol=1e-10)

    def test_gcn_normalize_handles_isolated_vertices(self):
        adj = sp.csr_matrix((3, 3))
        norm = A.gcn_normalize(adj, add_loops=False)
        assert norm.nnz == 0

    def test_gcn_normalize_without_loops(self, graph):
        norm = A.gcn_normalize(graph, add_loops=False)
        assert norm.diagonal().sum() == 0


class TestPermutation:
    def test_permutation_from_parts_groups_contiguously(self):
        parts = np.array([1, 0, 1, 0, 2])
        perm = A.permutation_from_parts(parts, 3)
        # part 0 members (old ids 1, 3) must map to new ids {0, 1}
        assert sorted(perm[[1, 3]]) == [0, 1]
        assert sorted(perm[[0, 2]]) == [2, 3]
        assert perm[4] == 4

    def test_permutation_from_parts_validates(self):
        with pytest.raises(ValueError):
            A.permutation_from_parts(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            A.permutation_from_parts(np.array([0, 3]), 2)

    def test_symmetric_permutation_preserves_structure(self, graph):
        rng = np.random.default_rng(0)
        perm = rng.permutation(graph.shape[0])
        out = A.symmetric_permutation(graph, perm)
        assert out.nnz == graph.nnz
        assert A.is_symmetric(out)
        # Degrees are preserved up to reordering.
        np.testing.assert_array_equal(np.sort(A.degrees(out)),
                                      np.sort(A.degrees(graph)))

    def test_symmetric_permutation_roundtrip(self, graph):
        rng = np.random.default_rng(1)
        perm = rng.permutation(graph.shape[0])
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        back = A.symmetric_permutation(
            A.symmetric_permutation(graph, perm), inv)
        assert (back != graph).nnz == 0

    def test_symmetric_permutation_validates_perm(self, graph):
        with pytest.raises(ValueError):
            A.symmetric_permutation(graph, np.zeros(graph.shape[0], dtype=int))
        with pytest.raises(ValueError):
            A.symmetric_permutation(graph, np.arange(graph.shape[0] - 1))

    def test_permute_rows_matches_symmetric_permutation(self, graph):
        rng = np.random.default_rng(3)
        perm = rng.permutation(graph.shape[0])
        h = rng.normal(size=(graph.shape[0], 3))
        permuted_adj = A.symmetric_permutation(graph, perm)
        permuted_h = A.permute_rows(h, perm)
        # (P A P^T)(P H) == P (A H)
        left = permuted_adj @ permuted_h
        right = A.permute_rows(graph @ h, perm)
        np.testing.assert_allclose(left, right, atol=1e-12)

    def test_permute_rows_validates_length(self):
        with pytest.raises(ValueError):
            A.permute_rows(np.ones((3, 2)), np.array([0, 1]))
