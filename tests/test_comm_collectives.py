"""Tests for the collective cost formulas (repro.comm.collectives)."""

import math

import pytest

from repro.comm import collectives as coll
from repro.comm.machine import perlmutter


MACHINE = perlmutter()


class TestBroadcast:
    def test_zero_for_single_rank_or_empty_payload(self):
        assert coll.broadcast_time(MACHINE, [0], 1e6) == 0.0
        assert coll.broadcast_time(MACHINE, [0, 1], 0) == 0.0

    def test_latency_grows_logarithmically(self):
        t2 = coll.broadcast_time(MACHINE, [0, 1], 8)
        t8 = coll.broadcast_time(MACHINE, [0, 1, 2, 3, 8, 9, 10, 11], 8)
        # 8 ranks -> 3 latency terms vs 1; payload term negligible here.
        assert t8 > t2

    def test_bandwidth_term_linear_in_bytes(self):
        small = coll.broadcast_time(MACHINE, [0, 1], 1e6)
        large = coll.broadcast_time(MACHINE, [0, 1], 2e6)
        assert large - small == pytest.approx(1e6 * MACHINE.beta_intra)

    def test_intra_node_group_uses_fast_link(self):
        intra = coll.broadcast_time(MACHINE, [0, 1, 2, 3], 1e6)
        inter = coll.broadcast_time(MACHINE, [0, 4, 8, 12], 1e6)
        assert inter >= intra


class TestAllreduce:
    def test_zero_cases(self):
        assert coll.allreduce_time(MACHINE, [3], 100) == 0.0
        assert coll.allreduce_time(MACHINE, [0, 1], 0) == 0.0

    def test_bandwidth_term_approaches_2x_payload(self):
        # For large P the ring all-reduce moves ~2x the payload.
        payload = 1e8
        t = coll.allreduce_time(MACHINE, list(range(64)), payload)
        bandwidth_only = 2 * payload * MACHINE.beta_inter * 63 / 64
        assert t == pytest.approx(bandwidth_only +
                                  2 * math.log2(64) * MACHINE.alpha_inter)

    def test_monotone_in_bytes(self):
        t1 = coll.allreduce_time(MACHINE, [0, 1, 2, 3], 1e5)
        t2 = coll.allreduce_time(MACHINE, [0, 1, 2, 3], 2e5)
        assert t2 > t1


class TestReduceAndAllgather:
    def test_reduce_zero_cases(self):
        assert coll.reduce_time(MACHINE, [0], 10) == 0.0
        assert coll.reduce_time(MACHINE, [0, 1], 0) == 0.0

    def test_reduce_smaller_than_allgather_for_same_payload(self):
        ranks = list(range(8))
        payload = 1e6
        assert coll.reduce_time(MACHINE, ranks, payload) < \
            coll.allgather_time(MACHINE, ranks, payload)

    def test_allgather_scales_with_group_size(self):
        t4 = coll.allgather_time(MACHINE, [0, 1, 2, 3], 1e5)
        t8 = coll.allgather_time(MACHINE, list(range(8)), 1e5)
        assert t8 > t4


class TestAlltoallv:
    def test_per_rank_times_shape(self):
        ranks = [0, 1, 2]
        sizes = [[0, 10, 10], [10, 0, 10], [10, 10, 0]]
        times = coll.alltoallv_time_per_rank(MACHINE, ranks, sizes)
        assert len(times) == 3
        assert all(t > 0 for t in times)

    def test_empty_exchange_costs_nothing(self):
        sizes = [[0, 0], [0, 0]]
        assert coll.alltoallv_time_per_rank(MACHINE, [0, 1], sizes) == [0.0, 0.0]

    def test_bottleneck_rank_pays_most(self):
        # Rank 0 sends a lot to everyone; it should be the slowest.
        ranks = [0, 1, 2, 3]
        sizes = [[0, 1e6, 1e6, 1e6],
                 [10, 0, 10, 10],
                 [10, 10, 0, 10],
                 [10, 10, 10, 0]]
        times = coll.alltoallv_time_per_rank(MACHINE, ranks, sizes)
        assert times[0] == max(times)

    def test_receive_side_counts_too(self):
        # Rank 3 receives a lot even though it sends almost nothing.
        ranks = [0, 1, 2, 3]
        sizes = [[0, 0, 0, 1e6],
                 [0, 0, 0, 1e6],
                 [0, 0, 0, 1e6],
                 [1, 1, 1, 0]]
        times = coll.alltoallv_time_per_rank(MACHINE, ranks, sizes)
        assert times[3] == max(times)

    def test_diagonal_is_ignored(self):
        ranks = [0, 1]
        sizes = [[5e6, 10], [10, 5e6]]
        times = coll.alltoallv_time_per_rank(MACHINE, ranks, sizes)
        expected = MACHINE.alpha_intra + 10 * MACHINE.beta_intra
        assert times[0] == pytest.approx(expected)
