"""Tests for partition quality metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.partition import (boundary_vertices, communication_volumes_1d,
                             edgecut, load_imbalance, part_nonzeros,
                             part_sizes, partition_report)
from repro.graphs.generators import erdos_renyi_graph, grid_graph


def path_graph(n: int) -> sp.csr_matrix:
    """0-1-2-...-(n-1) path."""
    rows = np.arange(n - 1)
    cols = rows + 1
    data = np.ones(n - 1)
    adj = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    return (adj + adj.T).tocsr()


class TestBasicMetrics:
    def test_part_sizes(self):
        sizes = part_sizes(np.array([0, 0, 1, 2, 2, 2]), 3)
        assert sizes.tolist() == [2, 1, 3]

    def test_part_nonzeros(self):
        adj = path_graph(4)
        parts = np.array([0, 0, 1, 1])
        nnz = part_nonzeros(adj, parts, 2)
        # degrees: 1, 2, 2, 1
        assert nnz.tolist() == [3, 3]

    def test_load_imbalance(self):
        assert load_imbalance(np.array([2, 2, 2])) == pytest.approx(1.0)
        assert load_imbalance(np.array([1, 3])) == pytest.approx(1.5)
        assert load_imbalance(np.array([])) == 1.0
        assert load_imbalance(np.zeros(3)) == 1.0


class TestEdgecut:
    def test_path_graph_cut(self):
        adj = path_graph(6)
        parts = np.array([0, 0, 0, 1, 1, 1])
        assert edgecut(adj, parts) == 1

    def test_all_one_part_is_zero(self):
        adj = path_graph(5)
        assert edgecut(adj, np.zeros(5, dtype=int)) == 0

    def test_alternating_cut_counts_every_edge(self):
        adj = path_graph(5)
        parts = np.array([0, 1, 0, 1, 0])
        assert edgecut(adj, parts) == 4

    def test_grid_block_cut(self):
        side = 6
        adj = grid_graph(side)
        # Split the grid into top / bottom halves: cut = side edges.
        parts = (np.arange(side * side) // (side * side // 2)).astype(int)
        assert edgecut(adj, parts) == side


class TestBoundary:
    def test_boundary_of_path_split(self):
        adj = path_graph(6)
        parts = np.array([0, 0, 0, 1, 1, 1])
        mask = boundary_vertices(adj, parts)
        assert mask.tolist() == [False, False, True, True, False, False]

    def test_no_boundary_single_part(self):
        adj = path_graph(4)
        assert not boundary_vertices(adj, np.zeros(4, dtype=int)).any()


class TestCommunicationVolumes:
    def test_path_graph_volumes(self):
        adj = path_graph(6)
        parts = np.array([0, 0, 0, 1, 1, 1])
        vol = communication_volumes_1d(adj, parts, 2)
        # Vertex 2 (part 0) has a neighbour in part 1 and vice versa.
        assert vol.total == 2
        assert vol.send_volume.tolist() == [1, 1]
        assert vol.recv_volume.tolist() == [1, 1]
        assert vol.pairwise[0, 1] == 1 and vol.pairwise[1, 0] == 1

    def test_star_graph_asymmetry(self):
        # Star: hub 0 connected to 1..4; hub alone in part 0.
        n = 5
        rows = np.zeros(4, dtype=int)
        cols = np.arange(1, 5)
        adj = sp.coo_matrix((np.ones(4), (rows, cols)), shape=(n, n))
        adj = (adj + adj.T).tocsr()
        parts = np.array([0, 1, 1, 2, 2])
        vol = communication_volumes_1d(adj, parts, 3)
        # Hub must be sent to parts 1 and 2 -> send volume of part 0 is 2;
        # each leaf must be sent to part 0 -> parts 1 and 2 send 2 each.
        assert vol.send_volume.tolist() == [2, 2, 2]
        assert vol.recv_volume.tolist() == [4, 1, 1]
        assert vol.max_recv == 4
        assert vol.total == 6

    def test_totals_consistent(self):
        adj = erdos_renyi_graph(60, avg_degree=5, seed=1)
        parts = np.random.default_rng(0).integers(0, 4, size=60)
        vol = communication_volumes_1d(adj, parts, 4)
        assert vol.send_volume.sum() == vol.recv_volume.sum() == vol.total
        assert vol.pairwise.sum() == vol.total
        assert np.all(np.diag(vol.pairwise) == 0)

    def test_volume_bounded_by_edgecut(self):
        """Each cut edge creates at most two (vertex, part) pairs, and the
        volume can never exceed twice the edgecut (counting both ends)."""
        adj = erdos_renyi_graph(80, avg_degree=6, seed=2)
        parts = np.random.default_rng(1).integers(0, 5, size=80)
        vol = communication_volumes_1d(adj, parts, 5)
        assert vol.total <= 2 * edgecut(adj, parts)

    def test_imbalance_properties(self):
        adj = path_graph(8)
        parts = np.array([0, 0, 0, 0, 1, 1, 2, 2])
        vol = communication_volumes_1d(adj, parts, 3)
        assert vol.send_imbalance >= 1.0
        assert vol.send_imbalance_pct == pytest.approx(
            (vol.send_imbalance - 1.0) * 100.0)

    def test_empty_graph(self):
        adj = sp.csr_matrix((4, 4))
        vol = communication_volumes_1d(adj, np.array([0, 1, 0, 1]), 2)
        assert vol.total == 0
        assert vol.max_send == 0


class TestPartitionReport:
    def test_report_keys_and_consistency(self):
        adj = erdos_renyi_graph(40, avg_degree=4, seed=3)
        parts = np.random.default_rng(2).integers(0, 4, size=40)
        report = partition_report(adj, parts, 4)
        assert report["nparts"] == 4
        assert report["edgecut"] == edgecut(adj, parts)
        vol = communication_volumes_1d(adj, parts, 4)
        assert report["total_volume"] == vol.total
        assert report["max_send_volume"] == vol.max_send
        assert report["vertex_imbalance"] >= 1.0
