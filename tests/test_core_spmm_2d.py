"""Tests for the 2D (SUMMA-style) distributed SpMM variants."""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (Dist2DSparseMatrix, Grid2D, spmm_2d_oblivious,
                        spmm_2d_sparsity_aware)
from repro.graphs import erdos_renyi_graph, gcn_normalize


@pytest.fixture(scope="module")
def graph():
    return gcn_normalize(erdos_renyi_graph(48, avg_degree=7, seed=4))


@pytest.fixture()
def dense(graph):
    return np.random.default_rng(1).normal(size=(graph.shape[0], 5))


class TestGrid2D:
    def test_rank_coords_round_trip(self):
        grid = Grid2D(3, 4)
        assert grid.nranks == 12
        for r in range(12):
            i, j = grid.coords(r)
            assert grid.rank(i, j) == r

    def test_groups(self):
        grid = Grid2D(2, 3)
        assert grid.row_group(1) == [3, 4, 5]
        assert grid.col_group(2) == [2, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(0, 2)
        grid = Grid2D(2, 2)
        with pytest.raises(ValueError):
            grid.rank(2, 0)
        with pytest.raises(ValueError):
            grid.coords(4)


class TestDist2DSparseMatrix:
    def test_blocks_cover_all_nonzeros(self, graph):
        grid = Grid2D(3, 2)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        assert matrix.nnz == graph.nnz

    def test_nnz_cols_are_local_and_sorted(self, graph):
        grid = Grid2D(2, 4)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        for i in range(2):
            for j in range(4):
                cols = matrix.nnz_cols(i, j)
                width = matrix.col_dist.block_size(j)
                assert np.all(cols >= 0) and np.all(cols < width)
                assert np.all(np.diff(cols) > 0)

    def test_rejects_non_square(self):
        import scipy.sparse as sp
        from repro.core import BlockRowDistribution
        with pytest.raises(ValueError):
            Dist2DSparseMatrix(sp.random(4, 6, 0.5, format="csr"),
                               BlockRowDistribution.uniform(4, 2),
                               BlockRowDistribution.uniform(6, 2))


@pytest.mark.parametrize("pr,pc", [(2, 2), (4, 2), (2, 4), (3, 3)])
class TestCorrectness:
    def test_oblivious_matches_direct(self, graph, dense, pr, pc):
        grid = Grid2D(pr, pc)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        comm = make_communicator(grid.nranks, machine="perlmutter")
        out = spmm_2d_oblivious(matrix, dense, grid, comm)
        np.testing.assert_allclose(out, graph @ dense, atol=1e-9)

    def test_sparsity_aware_matches_direct(self, graph, dense, pr, pc):
        grid = Grid2D(pr, pc)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        comm = make_communicator(grid.nranks, machine="perlmutter")
        out = spmm_2d_sparsity_aware(matrix, dense, grid, comm)
        np.testing.assert_allclose(out, graph @ dense, atol=1e-9)


class TestCommunicationAccounting:
    def test_sparsity_aware_moves_no_more_gather_bytes(self, graph, dense):
        """The point-to-point phase of the SA variant never moves more data
        than the all-gather phase of the oblivious variant."""
        grid = Grid2D(4, 2)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)

        comm_obl = make_communicator(grid.nranks, machine="perlmutter")
        spmm_2d_oblivious(matrix, dense, grid, comm_obl)
        gather_bytes = comm_obl.events.total_bytes(category="bcast")

        comm_sa = make_communicator(grid.nranks, machine="perlmutter")
        spmm_2d_sparsity_aware(matrix, dense, grid, comm_sa)
        exchange_bytes = comm_sa.events.total_bytes(category="alltoall")

        assert exchange_bytes <= gather_bytes

    def test_allreduce_volume_identical_between_variants(self, graph, dense):
        grid = Grid2D(2, 2)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        comms = []
        for fn in (spmm_2d_oblivious, spmm_2d_sparsity_aware):
            comm = make_communicator(grid.nranks, machine="perlmutter")
            fn(matrix, dense, grid, comm)
            comms.append(comm.events.total_bytes(category="allreduce"))
        assert comms[0] == comms[1]

    def test_single_column_grid_has_no_row_reduction_traffic(self, graph, dense):
        grid = Grid2D(4, 1)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        comm = make_communicator(4, machine="perlmutter")
        out = spmm_2d_sparsity_aware(matrix, dense, grid, comm)
        np.testing.assert_allclose(out, graph @ dense, atol=1e-9)
        assert comm.events.total_bytes(category="allreduce") == 0


class TestValidation:
    def test_mismatched_grid(self, graph, dense):
        matrix = Dist2DSparseMatrix.uniform(graph, Grid2D(2, 2))
        comm = make_communicator(4)
        with pytest.raises(ValueError):
            spmm_2d_oblivious(matrix, dense, Grid2D(4, 1), comm)

    def test_mismatched_comm(self, graph, dense):
        grid = Grid2D(2, 2)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        with pytest.raises(ValueError):
            spmm_2d_sparsity_aware(matrix, dense, grid, make_communicator(3))

    def test_mismatched_dense(self, graph):
        grid = Grid2D(2, 2)
        matrix = Dist2DSparseMatrix.uniform(graph, grid)
        comm = make_communicator(4)
        with pytest.raises(ValueError):
            spmm_2d_oblivious(matrix, np.ones((5, 2)), grid, comm)
