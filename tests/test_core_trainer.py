"""Tests for the high-level distributed training entry point."""

import numpy as np
import pytest

from repro.core import DistTrainConfig, setup_distributed, train_distributed
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale=0.05, n_features=12, n_classes=4,
                        seed=3)


class TestSetup:
    def test_setup_without_partitioner_uses_uniform_blocks(self, dataset):
        cfg = DistTrainConfig(n_ranks=4, partitioner=None, epochs=1)
        setup = setup_distributed(dataset, cfg)
        assert setup.partition is None
        sizes = setup.distribution.block_sizes
        assert sizes.max() - sizes.min() <= 1
        assert sizes.sum() == dataset.n_vertices

    def test_setup_with_partitioner_permutes_consistently(self, dataset):
        cfg = DistTrainConfig(n_ranks=4, partitioner="metis_like", epochs=1,
                              seed=0)
        setup = setup_distributed(dataset, cfg)
        assert setup.partition is not None
        # Block sizes equal the partition's part sizes.
        np.testing.assert_array_equal(setup.distribution.block_sizes,
                                      setup.partition.part_sizes())
        # Node data was permuted alongside: label histogram unchanged.
        np.testing.assert_array_equal(
            np.bincount(setup.node_data.labels),
            np.bincount(dataset.node_data.labels))

    def test_setup_builds_grid_for_15d(self, dataset):
        cfg = DistTrainConfig(n_ranks=8, algorithm="1.5d",
                              replication_factor=2, partitioner=None, epochs=1)
        setup = setup_distributed(dataset, cfg)
        assert setup.grid is not None
        assert setup.grid.nrows == 4
        assert setup.model.adjacency.nblocks == 4

    def test_setup_rejects_more_blocks_than_vertices(self):
        tiny = load_dataset("reddit", scale=0.05, n_features=4, n_classes=2,
                            seed=0)
        cfg = DistTrainConfig(n_ranks=tiny.n_vertices + 1, partitioner=None,
                              epochs=1)
        with pytest.raises(ValueError):
            setup_distributed(tiny, cfg)


class TestTraining:
    def test_loss_decreases_over_epochs(self, dataset):
        cfg = DistTrainConfig(n_ranks=4, partitioner=None, epochs=15,
                              learning_rate=0.1, seed=0)
        result = train_distributed(dataset, cfg, eval_every=0)
        losses = [h.loss for h in result.history]
        assert losses[-1] < losses[0]

    def test_history_and_timing_fields(self, dataset):
        cfg = DistTrainConfig(n_ranks=4, partitioner="gvb", epochs=3, seed=0)
        result = train_distributed(dataset, cfg, eval_every=2)
        assert len(result.history) == 3
        assert result.total_time_s > 0
        assert result.avg_epoch_time_s == pytest.approx(
            result.total_time_s / 3)
        assert all(h.epoch_time_s > 0 for h in result.history)
        # eval_every=2 evaluates epochs 0, 2 and the final epoch.
        assert result.history[0].train_accuracy is not None
        assert result.history[1].train_accuracy is None
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.partition_stats  # populated when a partitioner is used

    def test_comm_summary_contents(self, dataset):
        cfg = DistTrainConfig(n_ranks=4, partitioner=None, epochs=2, seed=0)
        result = train_distributed(dataset, cfg, eval_every=0)
        for key in ("elapsed_s", "total_MB", "max_MB_per_rank"):
            assert key in result.comm_summary
        assert "alltoall" in result.breakdown

    def test_epoch_times_are_constant_across_epochs(self, dataset):
        """The simulated epoch time is deterministic and identical from one
        epoch to the next (the sparsity pattern never changes)."""
        cfg = DistTrainConfig(n_ranks=4, partitioner=None, epochs=4, seed=0)
        result = train_distributed(dataset, cfg, eval_every=0)
        times = np.array([h.epoch_time_s for h in result.history])
        np.testing.assert_allclose(times, times[0], rtol=1e-9)

    def test_deterministic_given_seed(self, dataset):
        cfg = DistTrainConfig(n_ranks=4, partitioner="gvb", epochs=2, seed=1)
        a = train_distributed(dataset, cfg, eval_every=0)
        b = train_distributed(dataset, cfg, eval_every=0)
        assert a.final_loss == b.final_loss
        assert a.avg_epoch_time_s == b.avg_epoch_time_s

    def test_zero_epochs_gives_empty_history(self, dataset):
        cfg = DistTrainConfig(n_ranks=2, partitioner=None, epochs=0, seed=0)
        result = train_distributed(dataset, cfg, eval_every=0)
        assert result.history == []
        assert np.isnan(result.final_loss)


class TestSchemeBehaviour:
    def test_sparsity_aware_moves_fewer_bytes_than_oblivious(self, dataset):
        base = dict(n_ranks=4, partitioner=None, epochs=2, seed=0)
        sa = train_distributed(dataset, DistTrainConfig(sparsity_aware=True,
                                                        **base), eval_every=0)
        ob = train_distributed(dataset, DistTrainConfig(sparsity_aware=False,
                                                        **base), eval_every=0)
        assert sa.comm_summary["total_MB"] < ob.comm_summary["total_MB"]

    def test_partitioner_reduces_communication(self, dataset):
        base = dict(n_ranks=4, sparsity_aware=True, epochs=2, seed=0)
        plain = train_distributed(dataset, DistTrainConfig(partitioner=None,
                                                           **base),
                                  eval_every=0)
        gvb = train_distributed(dataset, DistTrainConfig(partitioner="gvb",
                                                         **base),
                                eval_every=0)
        assert gvb.comm_summary["total_MB"] <= plain.comm_summary["total_MB"]

    def test_partitioning_does_not_change_learning(self, dataset):
        """Partitioning permutes the vertices but must not change what the
        model learns (same loss up to floating-point rounding)."""
        base = dict(n_ranks=4, sparsity_aware=True, epochs=5,
                    learning_rate=0.05, seed=0)
        plain = train_distributed(dataset, DistTrainConfig(partitioner=None,
                                                           **base),
                                  eval_every=0)
        gvb = train_distributed(dataset, DistTrainConfig(partitioner="gvb",
                                                         **base),
                                eval_every=0)
        assert gvb.final_loss == pytest.approx(plain.final_loss, rel=1e-6)
        assert gvb.test_accuracy == pytest.approx(plain.test_accuracy,
                                                  abs=0.02)
