"""Tests for the partition base classes and the block/random baselines."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.partition import (BlockPartitioner, RandomPartitioner,
                             balanced_block_bounds, contiguous_parts,
                             get_partitioner, validate_parts)
from repro.partition.base import PartitionResult


class TestValidateParts:
    def test_accepts_valid(self):
        parts = validate_parts(np.array([0, 1, 1]), 2)
        assert parts.dtype == np.int64

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_parts(np.array([0, 2]), 2)
        with pytest.raises(ValueError):
            validate_parts(np.array([-1, 0]), 2)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            validate_parts(np.array([0, 1]), 2, n_vertices=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            validate_parts(np.zeros((2, 2), dtype=int), 2)

    def test_rejects_nonpositive_nparts(self):
        with pytest.raises(ValueError):
            validate_parts(np.array([0]), 0)


class TestPartitionResult:
    def test_part_sizes_and_members(self):
        result = PartitionResult(parts=np.array([0, 1, 0, 2]), nparts=3)
        assert result.part_sizes().tolist() == [2, 1, 1]
        assert result.members(0).tolist() == [0, 2]
        assert result.n_vertices == 4

    def test_members_out_of_range(self):
        result = PartitionResult(parts=np.array([0, 1]), nparts=2)
        with pytest.raises(ValueError):
            result.members(5)

    def test_relabeling_groups_parts(self):
        result = PartitionResult(parts=np.array([1, 0, 1, 0]), nparts=2)
        perm = result.relabeling()
        # Part-0 vertices (ids 1, 3) map to new ids 0, 1.
        assert sorted(perm[[1, 3]].tolist()) == [0, 1]
        assert sorted(perm[[0, 2]].tolist()) == [2, 3]

    def test_block_sizes_alias(self):
        result = PartitionResult(parts=np.array([0, 0, 1]), nparts=2)
        assert result.block_sizes().tolist() == [2, 1]


class TestBlockHelpers:
    def test_balanced_block_bounds(self):
        bounds = balanced_block_bounds(10, 3)
        assert bounds.tolist() == [0, 4, 7, 10]

    def test_contiguous_parts_cover_everything(self):
        parts = contiguous_parts(11, 4)
        assert parts.shape == (11,)
        assert np.bincount(parts).tolist() == [3, 3, 3, 2]

    def test_bounds_reject_nonpositive_parts(self):
        with pytest.raises(ValueError):
            balanced_block_bounds(5, 0)


class TestBaselinePartitioners:
    @pytest.fixture(scope="class")
    def graph(self, small_graph=None):
        from repro.graphs.generators import erdos_renyi_graph
        return erdos_renyi_graph(50, avg_degree=4, seed=0)

    def test_block_partitioner_contiguous(self, graph):
        result = BlockPartitioner().partition(graph, 5)
        assert result.method == "block"
        # Contiguous: part id is non-decreasing in vertex id.
        assert np.all(np.diff(result.parts) >= 0)
        assert result.part_sizes().max() - result.part_sizes().min() <= 1

    def test_random_partitioner_balanced(self, graph):
        result = RandomPartitioner(seed=1).partition(graph, 5)
        sizes = result.part_sizes()
        assert sizes.max() - sizes.min() <= 1
        assert sizes.sum() == graph.shape[0]

    def test_random_partitioner_deterministic_per_seed(self, graph):
        a = RandomPartitioner(seed=2).partition(graph, 4).parts
        b = RandomPartitioner(seed=2).partition(graph, 4).parts
        c = RandomPartitioner(seed=3).partition(graph, 4).parts
        np.testing.assert_array_equal(a, b)
        assert np.any(a != c)

    def test_stats_populated(self, graph):
        result = RandomPartitioner(seed=0).partition(graph, 4)
        for key in ("edgecut", "total_volume", "max_send_volume",
                    "nnz_imbalance"):
            assert key in result.stats

    def test_input_validation(self, graph):
        with pytest.raises(ValueError):
            BlockPartitioner().partition(graph, 0)
        with pytest.raises(ValueError):
            BlockPartitioner().partition(graph, graph.shape[0] + 1)
        with pytest.raises(TypeError):
            BlockPartitioner().partition(np.eye(4), 2)
        with pytest.raises(ValueError):
            BlockPartitioner().partition(sp.csr_matrix(np.ones((2, 3))), 2)

    def test_callable_interface(self, graph):
        partitioner = BlockPartitioner()
        assert np.array_equal(partitioner(graph, 3).parts,
                              partitioner.partition(graph, 3).parts)


class TestRegistry:
    def test_get_partitioner_names(self):
        for name in ("block", "random", "metis_like", "gvb"):
            assert get_partitioner(name) is not None

    def test_get_partitioner_kwargs(self):
        p = get_partitioner("random", seed=7)
        assert p.seed == 7

    def test_get_partitioner_unknown(self):
        with pytest.raises(KeyError):
            get_partitioner("patoh")
