"""Reusable backend-conformance harness for the ``Communicator`` contract.

The paper's equivalence claims rest on every backend executing the same
collectives with the same semantics; this module centralises that contract
as a registry of *checks* so each new backend is proven by parametrisation
instead of hand-written per-backend tests.  To put a new backend under the
full conformance net, add its registry name to :data:`CONFORMANT_BACKENDS`
— that is the promised one-line registration.

Each check is a callable ``check(make)`` where ``make(nranks, **kw)``
returns a live communicator of the backend under test (the caller owns
cleanup).  Checks assert *behaviour all backends must share*:

* collective delivery semantics (driver calling convention, results
  indexed by group position, simulator copy contract: the root/owner slot
  is the caller's object, other slots are independent buffers);
* bitwise-deterministic reductions through
  :func:`repro.comm.base.reduce_stack`;
* group topology handling (subgroups, non-sorted member order,
  validation of malformed groups and operands);
* volume accounting — identical :class:`~repro.comm.events.EventLog`
  streams regardless of how the bytes physically moved;
* the accounting hooks and the ``parallel_for`` execution contract;
* lifecycle — idempotent ``close``, context-manager support, reporting
  surviving close, and failure isolation (an exception inside a rank task
  must neither hang the communicator nor poison later operations).

Checks deliberately do **not** assert backend-specific properties such as
aliasing of delivered payloads (the simulator hands the sender's object
through; the process backend reconstructs it from bytes) — equality, not
identity, is the cross-backend contract.

``tests/test_comm_conformance.py`` drives this registry over every name
in :data:`CONFORMANT_BACKENDS` and adds the randomized SpMM equivalence
property layer on top.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

import numpy as np
import pytest

from repro.comm.base import reduce_stack

__all__ = ["CONFORMANT_BACKENDS", "CONTRACT_CHECKS", "contract_check"]

#: Every backend that must pass the full conformance suite.  Adding a new
#: backend to the proof net is this one line (plus its factory
#: registration in ``repro.comm``).
CONFORMANT_BACKENDS = ("sim", "threaded", "process")

#: name -> check callable ``(make) -> None``.
CONTRACT_CHECKS: Dict[str, Callable] = {}


def contract_check(fn: Callable) -> Callable:
    """Register ``fn`` as a named conformance check."""
    name = fn.__name__
    if name.startswith("check_"):
        name = name[len("check_"):]
    CONTRACT_CHECKS[name] = fn
    return fn


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Broadcast
# ----------------------------------------------------------------------
@contract_check
def check_broadcast_delivery(make):
    comm = make(4)
    value = np.arange(12.0).reshape(3, 4)
    out = comm.broadcast(value, root=1)
    assert len(out) == 4
    assert out[1] is value, "root keeps its own object"
    for i in (0, 2, 3):
        np.testing.assert_array_equal(out[i], value)
        assert out[i] is not value, "receivers get independent buffers"


@contract_check
def check_broadcast_copy_independence(make):
    comm = make(3)
    value = np.ones((2, 2))
    out = comm.broadcast(value, root=0)
    out[1][0, 0] = 99.0
    assert out[2][0, 0] == 1.0, "receiver buffers must not alias each other"
    assert value[0, 0] == 1.0, "receiver buffers must not alias the source"


@contract_check
def check_broadcast_root_validation(make):
    comm = make(4)
    with pytest.raises(ValueError):
        comm.broadcast(np.ones(2), root=2, ranks=[0, 1])


@contract_check
def check_broadcast_volume_events(make):
    comm = make(4)
    value = np.zeros((5, 3))  # 120 bytes
    comm.broadcast(value, root=0)
    events = comm.events.filtered(kind="bcast")
    assert len(events) == 3, "one logged message per non-root receiver"
    assert all(e.src == 0 and e.nbytes == value.nbytes for e in events)
    assert sorted(e.dst for e in events) == [1, 2, 3]


# ----------------------------------------------------------------------
# Allreduce
# ----------------------------------------------------------------------
@contract_check
def check_allreduce_sum_matches_reduce_stack(make):
    comm = make(4)
    arrays = [_rng(i).normal(size=(6, 2)) for i in range(4)]
    out = comm.allreduce([a.copy() for a in arrays])
    expected = reduce_stack(arrays, "sum")
    for got in out:
        np.testing.assert_array_equal(
            got, expected,
            err_msg="reductions must be bitwise identical to reduce_stack")


@contract_check
def check_allreduce_min_max(make):
    comm = make(3)
    arrays = [_rng(10 + i).normal(size=5) for i in range(3)]
    for op in ("max", "min"):
        out = comm.allreduce([a.copy() for a in arrays], op=op)
        expected = reduce_stack(arrays, op)
        for got in out:
            np.testing.assert_array_equal(got, expected)


@contract_check
def check_allreduce_dtype_coercion(make):
    comm = make(3)
    arrays = [np.arange(4, dtype=np.int64) * (i + 1) for i in range(3)]
    out = comm.allreduce(arrays)
    for got in out:
        assert got.dtype == np.float64, "integer inputs reduce in float64"
        np.testing.assert_array_equal(got, reduce_stack(arrays, "sum"))


@contract_check
def check_allreduce_results_independent(make):
    comm = make(3)
    out = comm.allreduce([np.ones(3) for _ in range(3)])
    out[0][0] = 99.0
    assert out[1][0] == 3.0 and out[2][0] == 3.0, \
        "per-rank results must be independently mutable"


@contract_check
def check_allreduce_validation(make):
    comm = make(3)
    with pytest.raises(ValueError):
        comm.allreduce([np.ones(2)] * 2)            # wrong operand count
    with pytest.raises(ValueError):
        comm.allreduce([np.ones(2), np.ones(3), np.ones(2)])  # shape mismatch
    with pytest.raises(ValueError):
        comm.allreduce([np.ones(2)] * 3, op="prod")  # unsupported op


# ----------------------------------------------------------------------
# Allgather / reduce
# ----------------------------------------------------------------------
@contract_check
def check_allgather_delivery(make):
    comm = make(4)
    arrays = [np.full((2, 2), float(i)) for i in range(4)]
    out = comm.allgather(arrays)
    for i in range(4):
        assert out[i][i] is arrays[i], "owner keeps its own object"
        for j in range(4):
            np.testing.assert_array_equal(out[i][j], arrays[j])
            if j != i:
                assert out[i][j] is not arrays[j], \
                    "gathered entries must not alias the contributions"
    with pytest.raises(ValueError):
        comm.allgather(arrays[:2])


@contract_check
def check_reduce_rooted(make):
    comm = make(4)
    arrays = [np.arange(5, dtype=np.int32) * (i + 1) for i in range(4)]
    out = comm.reduce([a.copy() for a in arrays], root=2)
    expected = reduce_stack(arrays, "sum", force_float64=True)
    for pos, got in enumerate(out):
        if pos == 2:
            assert got.dtype == np.float64
            np.testing.assert_array_equal(got, expected)
        else:
            assert got is None, "only the root slot carries the reduction"


@contract_check
def check_reduce_validation(make):
    comm = make(3)
    with pytest.raises(ValueError):
        comm.reduce([np.ones(2)] * 3, root=7)
    with pytest.raises(ValueError):
        comm.reduce([np.ones(2)] * 3, root=0, op="min")  # reduce: sum/max only


# ----------------------------------------------------------------------
# Alltoallv
# ----------------------------------------------------------------------
@contract_check
def check_alltoallv_transpose(make):
    comm = make(4)
    send = [[np.full((1, 2), 10.0 * i + j) if i != j else None
             for j in range(4)] for i in range(4)]
    recv = comm.alltoallv(send)
    for i in range(4):
        for j in range(4):
            if i == j:
                assert recv[i][j] is None
            else:
                np.testing.assert_array_equal(
                    recv[i][j], np.full((1, 2), 10.0 * j + i),
                    err_msg="recv[i][j] must be what j sent to i")


@contract_check
def check_alltoallv_sparse_pattern(make):
    """None payloads and empty arrays travel as 'nothing'."""
    comm = make(3)
    send = [[None] * 3 for _ in range(3)]
    send[0][1] = np.arange(6.0)
    send[2][1] = np.zeros((0, 4))    # empty: delivered but no traffic
    send[1][1] = np.ones(2)          # diagonal: local, no traffic
    recv = comm.alltoallv(send)
    np.testing.assert_array_equal(recv[1][0], np.arange(6.0))
    assert recv[1][2].shape == (0, 4)
    assert recv[1][1] is send[1][1]
    assert recv[0][2] is None and recv[2][0] is None
    assert comm.events.message_count() == 1, \
        "only the one non-empty off-diagonal payload is traffic"
    assert comm.events.total_bytes() == 48


@contract_check
def check_alltoallv_volume_events(make):
    comm = make(3)
    send = [[np.ones((i + j + 1,)) if i != j else None
             for j in range(3)] for i in range(3)]
    comm.alltoallv(send)
    expected = sum(8 * (i + j + 1)
                   for i in range(3) for j in range(3) if i != j)
    assert comm.events.total_bytes() == expected
    mat = comm.events.traffic_matrix(3)
    assert mat[0, 1] == 8 * 2 and mat[2, 1] == 8 * 4
    assert np.all(np.diag(mat) == 0)


@contract_check
def check_alltoallv_validation(make):
    comm = make(3)
    with pytest.raises(ValueError):
        comm.alltoallv([[None] * 3] * 2)          # wrong row count
    with pytest.raises(ValueError):
        comm.alltoallv([[None] * 2] * 3)          # ragged row


# ----------------------------------------------------------------------
# Exchange (batched point-to-point)
# ----------------------------------------------------------------------
@contract_check
def check_exchange_delivery_and_events(make):
    comm = make(4)
    msgs = [(0, 1, np.ones(3)), (2, 3, np.full(5, 2.0)), (1, 1, np.ones(2))]
    delivered = comm.exchange(msgs)
    assert set(delivered) == {(0, 1), (2, 3), (1, 1)}
    np.testing.assert_array_equal(delivered[(0, 1)], np.ones(3))
    np.testing.assert_array_equal(delivered[(2, 3)], np.full(5, 2.0))
    assert delivered[(1, 1)] is msgs[2][2], "self-messages are free passes"
    assert comm.events.message_count() == 2, \
        "self-messages and empties are not traffic"
    assert comm.events.total_bytes() == 8 * (3 + 5)


@contract_check
def check_exchange_validation(make):
    comm = make(2)
    with pytest.raises(ValueError):
        comm.exchange([(0, 5, np.ones(2))])
    with pytest.raises(ValueError):
        comm.exchange([(-1, 0, np.ones(2))])


# ----------------------------------------------------------------------
# Nonblocking collectives (handle-based)
# ----------------------------------------------------------------------
@contract_check
def check_nonblocking_broadcast_delivery(make):
    """ibroadcast delivers exactly what broadcast would, via wait()."""
    comm = make(4)
    value = np.arange(12.0).reshape(3, 4)
    handle = comm.ibroadcast(value, root=1)
    assert isinstance(handle.test(), bool), "test() is a nonblocking probe"
    out = handle.wait()
    assert len(out) == 4
    assert out[1] is value, "root keeps its own object"
    for i in (0, 2, 3):
        np.testing.assert_array_equal(out[i], value)
        assert out[i] is not value, "receivers get independent buffers"
    assert handle.test() is True, "test() is True after a completed wait"


@contract_check
def check_nonblocking_allreduce_matches_blocking(make):
    comm = make(4)
    arrays = [_rng(i).normal(size=(6, 2)) for i in range(4)]
    blocking = comm.allreduce([a.copy() for a in arrays])
    handle = comm.iallreduce([a.copy() for a in arrays])
    out = handle.wait()
    for got, want in zip(out, blocking):
        np.testing.assert_array_equal(
            got, want,
            err_msg="nonblocking reductions must be bitwise identical to "
                    "the blocking collective")
    out[0][0, 0] = 99.0
    assert out[1][0, 0] != 99.0, "per-rank results independently mutable"


@contract_check
def check_nonblocking_alltoallv_transpose(make):
    comm = make(3)
    send = [[np.full((2,), 10.0 * i + j) if i != j else None
             for j in range(3)] for i in range(3)]
    recv = comm.ialltoallv(send).wait()
    for i in range(3):
        for j in range(3):
            if i != j:
                np.testing.assert_array_equal(
                    recv[i][j], np.full((2,), 10.0 * j + i))


@contract_check
def check_nonblocking_exchange_delivery(make):
    comm = make(4)
    msgs = [(0, 1, np.ones(3)), (2, 3, np.full(5, 2.0)), (1, 1, np.ones(2))]
    delivered = comm.iexchange(msgs).wait()
    assert set(delivered) == {(0, 1), (2, 3), (1, 1)}
    np.testing.assert_array_equal(delivered[(0, 1)], np.ones(3))
    np.testing.assert_array_equal(delivered[(2, 3)], np.full(5, 2.0))


@contract_check
def check_nonblocking_overlap_with_local_compute(make):
    """Local compute dispatched between issue and wait must neither
    deadlock nor corrupt the in-flight collective — the contract the
    pipelined compiled SpMMs rely on."""
    comm = make(4)
    value = np.arange(256.0).reshape(32, 8)
    handle = comm.ibroadcast(value, root=0)
    ran = [0] * 4

    def task_for(i):
        def task():
            ran[i] += 1
        return task

    comm.parallel_for([task_for(i) for i in range(4)])
    out = handle.wait()
    assert ran == [1, 1, 1, 1], "overlapped compute ran exactly once"
    for i in range(1, 4):
        np.testing.assert_array_equal(out[i], value)
    # The communicator is healthy afterwards: a blocking collective works.
    after = comm.allreduce([np.ones(2)] * 4)
    np.testing.assert_array_equal(after[0], np.full(2, 4.0))


@contract_check
def check_nonblocking_double_wait_idempotent(make):
    """A second wait() returns the identical result and charges nothing."""
    comm = make(3)
    handle = comm.ibroadcast(np.ones((8, 4)), root=0)
    out = handle.wait()
    bytes_after = comm.events.total_bytes()
    messages_after = comm.events.message_count()
    elapsed_after = comm.elapsed()
    again = handle.wait()
    assert again is out, "wait() must be idempotent (same result object)"
    assert comm.events.total_bytes() == bytes_after
    assert comm.events.message_count() == messages_after
    assert comm.elapsed() == elapsed_after, \
        "a second wait must not charge more time"
    assert handle.test() is True


@contract_check
def check_nonblocking_completion_before_wait(make):
    """test() polling must converge to True and leave wait() trivial."""
    comm = make(3)
    handle = comm.iallreduce([np.full(4, float(i)) for i in range(3)])
    deadline = time.time() + 30.0
    while not handle.test():
        # Simulated backends complete only as simulated compute/comm
        # elapses; charging local time drives their clocks forward.
        for r in comm.ranks():
            comm.charge_seconds(r, 1.0)
        assert time.time() < deadline, "test() never became True"
    out = handle.wait()
    np.testing.assert_array_equal(out[0], np.full(4, 3.0))


@contract_check
def check_nonblocking_rejected_when_closed(make):
    comm = make(3)
    comm.broadcast(np.ones(2), root=0)
    comm.close()
    if comm.rejects_work_when_closed:
        events_before = comm.events.message_count()
        with pytest.raises(RuntimeError):
            comm.ibroadcast(np.ones(2), root=0)
        with pytest.raises(RuntimeError):
            comm.iallreduce([np.ones(2)] * 3)
        with pytest.raises(RuntimeError):
            comm.ialltoallv([[None] * 3] * 3)
        with pytest.raises(RuntimeError):
            comm.iexchange([(0, 1, np.ones(2))])
        assert comm.events.message_count() == events_before, \
            "rejected nonblocking work must not record phantom traffic"
    else:
        out = comm.ibroadcast(np.ones(2), root=0).wait()
        np.testing.assert_array_equal(out[1], np.ones(2))


@contract_check
def check_close_drains_inflight_handles(make):
    """close() with a collective in flight must complete it: the handle's
    result stays readable afterwards and no resources leak (the process
    backend's shm segments are asserted separately)."""
    comm = make(3)
    value = np.arange(16.0)
    handle = comm.ibroadcast(value, root=0)
    comm.close()
    out = handle.wait()
    np.testing.assert_array_equal(out[1], value)
    np.testing.assert_array_equal(out[2], value)


# ----------------------------------------------------------------------
# Group topology
# ----------------------------------------------------------------------
@contract_check
def check_subgroup_collectives(make):
    comm = make(4)
    value = np.full(3, 7.0)
    out = comm.broadcast(value, root=2, ranks=[1, 2])
    assert len(out) == 2
    assert out[1] is value              # position 1 <-> rank 2 (the root)
    np.testing.assert_array_equal(out[0], value)
    for e in comm.events:
        assert e.src in (1, 2) and e.dst in (1, 2), \
            "subgroup traffic must stay inside the subgroup"

    arrays = [np.full(2, 1.0), np.full(2, 10.0), np.full(2, 100.0)]
    out = comm.allreduce(arrays, ranks=[0, 2, 3])
    for got in out:
        np.testing.assert_array_equal(got, np.full(2, 111.0))


@contract_check
def check_unordered_group_positions(make):
    """Results are indexed by *group position*, not by global rank."""
    comm = make(4)
    out = comm.broadcast(np.full(2, 5.0), root=0, ranks=[2, 0])
    assert np.all(out[1] == 5.0) and np.all(out[0] == 5.0)
    assert out[1] is not None, "position 1 holds the root (rank 0)"

    send = [[None, np.full(1, 1.0)], [np.full(1, 2.0), None]]
    recv = comm.alltoallv(send, ranks=[3, 1])
    np.testing.assert_array_equal(recv[0][1], np.full(1, 2.0))
    np.testing.assert_array_equal(recv[1][0], np.full(1, 1.0))
    assert comm.events.filtered(kind="alltoallv")[0].src in (1, 3)


@contract_check
def check_group_validation(make):
    comm = make(4)
    with pytest.raises(ValueError):
        comm.broadcast(np.ones(2), root=0, ranks=[0, 0, 1])   # duplicate
    with pytest.raises(ValueError):
        comm.allreduce([np.ones(2)] * 2, ranks=[0, 9])        # out of range
    with pytest.raises(ValueError):
        comm.parallel_for([lambda: None], ranks=[-1])


# ----------------------------------------------------------------------
# Accounting hooks / reporting
# ----------------------------------------------------------------------
@contract_check
def check_accounting_hooks(make):
    comm = make(2)
    for value in (comm.charge_spmm(0, 1e6),
                  comm.charge_gemm(1, 1e6),
                  comm.charge_elementwise(0, 1e4),
                  comm.charge_seconds(1, 0.25)):
        assert isinstance(value, float) and value >= 0.0
    assert comm.elapsed() >= 0.0


@contract_check
def check_elapsed_monotonic(make):
    comm = make(4)
    t0 = comm.elapsed()
    comm.broadcast(np.ones((64, 8)), root=0)
    t1 = comm.elapsed()
    comm.allreduce([np.ones((32, 4))] * 4)
    t2 = comm.elapsed()
    assert t0 <= t1 <= t2
    assert t2 > 0.0, "collectives with payload must consume time"
    summary = comm.stats_summary()
    assert summary["total_MB"] > 0.0
    assert set(comm.breakdown()) >= {"bcast", "allreduce"}


# ----------------------------------------------------------------------
# parallel_for / barrier
# ----------------------------------------------------------------------
@contract_check
def check_parallel_for_semantics(make):
    comm = make(4)
    ran = [0] * 4
    results = [None] * 4

    def task_for(i):
        def task():
            ran[i] += 1
            results[i] = i * i
        return task

    comm.parallel_for([task_for(i) for i in range(4)])
    assert ran == [1, 1, 1, 1], "every task runs exactly once"
    assert results == [0, 1, 4, 9]

    sub = []
    comm.parallel_for([lambda: sub.append("a"), lambda: sub.append("b")],
                      ranks=[1, 3])
    assert sorted(sub) == ["a", "b"]
    with pytest.raises(ValueError):
        comm.parallel_for([lambda: None], ranks=[0, 1])


@contract_check
def check_parallel_for_exceptions(make):
    class Boom(RuntimeError):
        pass

    comm = make(3)

    def boom():
        raise Boom("task failed")

    with pytest.raises(Boom):
        comm.parallel_for([boom, lambda: None, lambda: None])
    # The failure must not poison the communicator: later work succeeds.
    out = comm.allreduce([np.ones(2)] * 3)
    np.testing.assert_array_equal(out[0], np.full(2, 3.0))


@contract_check
def check_barrier_synchronizes(make):
    comm = make(4)
    comm.charge_seconds(0, 0.5)       # only advances simulated clocks
    synced = comm.barrier()
    clocks = comm.timeline.clocks
    assert float(np.max(clocks) - np.min(clocks)) < 1e-9
    assert synced == pytest.approx(comm.timeline.elapsed())
    comm.barrier(ranks=[1, 2])        # subgroup barrier must not hang


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
@contract_check
def check_close_is_idempotent(make):
    comm = make(3)
    comm.broadcast(np.ones(4), root=0)
    comm.close()
    comm.close()
    comm.close()


@contract_check
def check_context_manager_closes(make):
    class Boom(RuntimeError):
        pass

    with make(3) as comm:
        comm.allreduce([np.ones(2)] * 3)
    _assert_closed_behaviour(comm)

    # close() must run even when the body raises mid-collective use —
    # this is the "SpMM variant raised" lifecycle guarantee.
    with pytest.raises(Boom):
        with make(3) as comm:
            comm.broadcast(np.ones(2), root=1)
            raise Boom()
    _assert_closed_behaviour(comm)


@contract_check
def check_reporting_survives_close(make):
    comm = make(3)
    comm.broadcast(np.ones((8, 2)), root=0)
    bytes_before = comm.events.total_bytes()
    elapsed_before = comm.elapsed()
    comm.close()
    assert comm.events.total_bytes() == bytes_before
    assert comm.elapsed() == elapsed_before
    assert comm.stats_summary()["total_MB"] == pytest.approx(
        bytes_before / 1e6)
    assert "bcast" in comm.breakdown()


def _assert_closed_behaviour(comm) -> None:
    """After close: reporting works; new work is rejected by real backends."""
    comm.elapsed()
    comm.breakdown()
    if comm.rejects_work_when_closed:
        events_before = comm.events.message_count()
        with pytest.raises(RuntimeError):
            comm.broadcast(np.ones(2), root=0)
        with pytest.raises(RuntimeError):
            comm.exchange([(0, 1, np.ones(2))])
        with pytest.raises(RuntimeError):
            comm.parallel_for([lambda: None] * comm.nranks)
        assert comm.events.message_count() == events_before, \
            "rejected work must not record phantom traffic"
    else:
        out = comm.broadcast(np.ones(2), root=0)
        np.testing.assert_array_equal(out[1], np.ones(2))
