"""Tests for the autotuning planner subsystem (repro.plan).

Covers the ISSUE-3 acceptance criteria: deterministic ranking under a
fixed seed, plan-cache round trip (a second planner run does zero
probes), cache invalidation when the matrix fingerprint changes, and
end-to-end bit-identity of ``"auto"`` training against the explicitly
configured equivalent on every communicator backend.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core import AUTO, DistTrainConfig, train_distributed
from repro.core.trainer import setup_distributed
from repro.graphs.datasets import load_dataset
from repro.plan import (BACKEND_MESSAGE_OVERHEAD_S, PlanCache, PlanCandidate,
                        PlanMatrixCache, Planner, enumerate_candidates,
                        matrix_fingerprint, resolve_config, score_candidates,
                        valid_replication_factors)
from repro.plan.planner import ExecutionPlan


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale=0.05, seed=0)


@pytest.fixture(scope="module")
def other_dataset():
    """Same name/scale, different seed: a different matrix fingerprint."""
    return load_dataset("amazon", scale=0.05, seed=1)


def make_planner(tmp_cache=None, **overrides):
    """A small, fully deterministic planner (no wall-clock budget)."""
    kwargs = dict(machine="perlmutter-scaled", probe=True, top_k=2,
                  probe_budget_s=None, seed=0)
    if tmp_cache is not None:
        kwargs.update(cache=PlanCache(tmp_cache), use_cache=True)
    else:
        kwargs.update(use_cache=False)
    kwargs.update(overrides)
    return Planner(**kwargs)


# ----------------------------------------------------------------------
# Plan space
# ----------------------------------------------------------------------
class TestSpace:
    def test_valid_replication_factors(self):
        assert valid_replication_factors(16) == [2, 4]
        assert valid_replication_factors(8) == [2]
        assert valid_replication_factors(6) == []
        assert valid_replication_factors(4, candidates=(1, 2)) == [1, 2]

    def test_enumeration_is_deterministic(self):
        a = enumerate_candidates(8)
        b = enumerate_candidates(8)
        assert a == b
        assert a == sorted(a, key=PlanCandidate.sort_key)

    def test_covers_all_axes(self):
        cands = enumerate_candidates(16)
        assert {c.algorithm for c in cands} == {"1d", "1.5d"}
        assert {c.mode for c in cands} == {"oblivious", "sparsity_aware"}
        assert {c.backend for c in cands} == {"process", "sim", "threaded"}
        assert {c.partitioner for c in cands} == {None, "metis_like", "gvb"}
        assert {c.replication_factor
                for c in cands if c.algorithm == "1.5d"} == {2, 4}
        assert all(c.replication_factor == 1
                   for c in cands if c.algorithm == "1d")

    def test_constrained_space(self):
        cands = enumerate_candidates(
            8, backends=["sim"], partitioners=[None], algorithms=["1d"],
            modes=["sparsity_aware"])
        assert len(cands) == 1
        only = cands[0]
        assert (only.algorithm, only.backend, only.partitioner) == \
            ("1d", "sim", None)
        assert only.sparsity_aware

    def test_multiple_rank_counts(self):
        cands = enumerate_candidates([4, 8], backends=["sim"],
                                     partitioners=[None], algorithms=["1d"])
        assert {c.n_ranks for c in cands} == {4, 8}

    def test_rejects_unknown_axes(self):
        with pytest.raises(ValueError, match="unknown backends"):
            enumerate_candidates(4, backends=["nope"])
        with pytest.raises(ValueError, match="unknown partitioners"):
            enumerate_candidates(4, partitioners=["nope"])
        with pytest.raises(ValueError, match="cannot train"):
            enumerate_candidates(4, algorithms=["2d"])

    def test_prunes_oversized_block_counts(self):
        assert enumerate_candidates(64, n_vertices=3) == []
        # 1.5D replication shrinks the block-row count, so high-c
        # candidates can stay feasible where 1D is pruned.
        survivors = enumerate_candidates(64, n_vertices=10)
        assert survivors
        assert all(c.n_block_rows <= 10 for c in survivors)
        assert all(c.algorithm == "1.5d" for c in survivors)


# ----------------------------------------------------------------------
# Analytic scoring
# ----------------------------------------------------------------------
class TestScore:
    def test_ranking_sorted_and_positive(self, dataset):
        cache = PlanMatrixCache(dataset.adjacency, seed=0)
        cands = enumerate_candidates(8, n_vertices=cache.n_vertices)
        scored = score_candidates(cands, cache, [300, 16, 24],
                                  "perlmutter-scaled")
        assert len(scored) == len(cands)
        predictions = [s.predicted_s for s in scored]
        assert predictions == sorted(predictions)
        assert all(p > 0 for p in predictions)

    def test_backend_overhead_orders_backends(self, dataset):
        cache = PlanMatrixCache(dataset.adjacency, seed=0)
        cands = enumerate_candidates(
            8, partitioners=[None], algorithms=["1d"],
            modes=["sparsity_aware"])
        scored = score_candidates(cands, cache, [300, 16, 24],
                                  "perlmutter-scaled")
        by_backend = {s.candidate.backend: s.predicted_s for s in scored}
        assert by_backend["sim"] < by_backend["threaded"] \
            < by_backend["process"]
        assert BACKEND_MESSAGE_OVERHEAD_S["sim"] == 0.0

    def test_matrix_cache_reuses_instances(self, dataset):
        cache = PlanMatrixCache(dataset.adjacency, seed=0)
        assert cache.matrix("gvb", 4) is cache.matrix("gvb", 4)
        assert cache.matrix("gvb", 4) is not cache.matrix("gvb", 8)

    def test_matrix_cache_rejects_oversized(self, dataset):
        cache = PlanMatrixCache(dataset.adjacency, seed=0)
        with pytest.raises(ValueError, match="cannot distribute"):
            cache.matrix(None, cache.n_vertices + 1)


# ----------------------------------------------------------------------
# Fingerprints and the JSON cache
# ----------------------------------------------------------------------
class TestCache:
    def test_fingerprint_stable_and_sensitive(self, dataset, other_dataset):
        fp1 = matrix_fingerprint(dataset.adjacency)
        assert fp1 == matrix_fingerprint(dataset.adjacency)
        assert fp1 != matrix_fingerprint(other_dataset.adjacency)

    def test_round_trip(self, tmp_path):
        cache = PlanCache(tmp_path / "plans.json")
        assert cache.get("k") is None
        cache.put("k", {"answer": 42})
        assert cache.get("k") == {"answer": 42}
        assert len(cache) == 1
        cache.clear()
        assert cache.get("k") is None

    def test_corrupt_file_is_treated_as_empty(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{not json")
        cache = PlanCache(path)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})          # overwrites the corrupt file
        assert cache.get("k") == {"v": 1}
        json.loads(path.read_text())      # now valid JSON again

    def test_foreign_version_ignored(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 999, "plans": {"k": {}}}))
        assert PlanCache(path).get("k") is None


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_ranking_is_deterministic_under_fixed_seed(self, dataset):
        rep1 = make_planner().plan_for_dataset(dataset, 8)
        rep2 = make_planner().plan_for_dataset(dataset, 8)
        assert rep1.table == rep2.table
        assert rep1.plan == rep2.plan
        assert rep1.probes_run == rep2.probes_run > 0

    def test_table_is_ranked_and_marks_choice(self, dataset):
        report = make_planner().plan_for_dataset(dataset, 8)
        assert [row["rank"] for row in report.table] == \
            list(range(1, len(report.table) + 1))
        chosen = [row for row in report.table if row["chosen"] == "*"]
        assert len(chosen) == 1 and chosen[0]["rank"] == 1
        assert chosen[0]["algorithm"] == report.plan.algorithm
        assert chosen[0]["backend"] == report.plan.backend
        # The empirically probed candidates carry a probed_s column.
        assert any(row["probed_s"] is not None for row in report.table)

    def test_plan_cache_round_trip_skips_probes(self, dataset, tmp_path):
        cache_path = tmp_path / "plans.json"
        first = make_planner(cache_path).plan_for_dataset(dataset, 8)
        assert not first.cache_hit and first.probes_run > 0

        second = make_planner(cache_path).plan_for_dataset(dataset, 8)
        assert second.cache_hit
        assert second.probes_run == 0
        assert second.plan.source == "cache"
        assert second.plan.as_config_kwargs() == first.plan.as_config_kwargs()
        assert second.table == first.table

    def test_cache_invalidated_by_matrix_fingerprint(self, dataset,
                                                     other_dataset, tmp_path):
        cache_path = tmp_path / "plans.json"
        first = make_planner(cache_path).plan_for_dataset(dataset, 8)
        other = make_planner(cache_path).plan_for_dataset(other_dataset, 8)
        assert not other.cache_hit          # different fingerprint -> re-plan
        assert other.probes_run > 0
        assert other.plan.fingerprint != first.plan.fingerprint
        # ... and both entries now coexist in the cache.
        assert make_planner(cache_path).plan_for_dataset(dataset, 8).cache_hit
        assert make_planner(cache_path) \
            .plan_for_dataset(other_dataset, 8).cache_hit

    def test_analytic_resolution_reuses_probed_plans(self, dataset, tmp_path):
        """The tune -> train --auto handoff: an analytic (read-only)
        planner over the same space reuses a probed cache entry, while a
        probing planner refuses to reuse an analytic-only one."""
        cache_path = tmp_path / "plans.json"
        probed = make_planner(cache_path).plan_for_dataset(dataset, 8)
        analytic = Planner(machine="perlmutter-scaled", probe=False, seed=0,
                           cache=PlanCache(cache_path), cache_read_only=True)
        reused = analytic.plan_for_dataset(dataset, 8)
        assert reused.cache_hit
        assert reused.plan.as_config_kwargs() == \
            probed.plan.as_config_kwargs()

        other_path = tmp_path / "plans2.json"
        Planner(machine="perlmutter-scaled", probe=False, seed=0,
                cache=PlanCache(other_path)).plan_for_dataset(dataset, 8)
        again = make_planner(other_path).plan_for_dataset(dataset, 8)
        assert not again.cache_hit          # analytic record, probing run

    def test_read_only_planner_never_writes(self, dataset, tmp_path):
        cache_path = tmp_path / "plans.json"
        planner = Planner(machine="perlmutter-scaled", probe=False, seed=0,
                          cache=PlanCache(cache_path), cache_read_only=True)
        planner.plan_for_dataset(dataset, 8)
        assert not cache_path.exists()

    def test_budget_truncated_records_are_not_served(self, dataset, tmp_path):
        """A cache record marked complete=False (probe loop cut short by
        the wall-clock budget) must be ignored, not returned as a hit."""
        cache_path = tmp_path / "plans.json"
        planner = make_planner(cache_path)
        first = planner.plan_for_dataset(dataset, 8)
        record = planner.cache.get(first.key)
        assert record["complete"] is True
        planner.cache.put(first.key, {**record, "complete": False})
        again = make_planner(cache_path).plan_for_dataset(dataset, 8)
        assert not again.cache_hit and again.probes_run > 0
        # ... and the fresh, complete run overwrites the truncated record.
        assert planner.cache.get(first.key)["complete"] is True

    def test_cache_invalidated_when_backend_registry_grows(self, dataset,
                                                           tmp_path,
                                                           monkeypatch):
        """Registering a new backend must invalidate cached default-space
        plans (the resolved axes are part of the key)."""
        from repro.comm import factory
        cache_path = tmp_path / "plans.json"
        first = make_planner(cache_path, probe=False) \
            .plan_for_dataset(dataset, 8)
        assert not first.cache_hit
        monkeypatch.setitem(factory.BACKENDS, "zzz-fake",
                            factory.BACKENDS["sim"])
        report = make_planner(cache_path, probe=False) \
            .plan_for_dataset(dataset, 8)
        assert not report.cache_hit

    def test_cache_key_separates_plan_spaces(self, dataset, tmp_path):
        cache_path = tmp_path / "plans.json"
        make_planner(cache_path).plan_for_dataset(dataset, 8)
        constrained = make_planner(cache_path, backends=["threaded"])
        report = constrained.plan_for_dataset(dataset, 8)
        assert not report.cache_hit         # different space, different key
        assert report.plan.backend == "threaded"

    def test_probeless_planner_is_analytic(self, dataset):
        report = make_planner(probe=False).plan_for_dataset(dataset, 8)
        assert report.probes_run == 0
        assert report.plan.source == "analytic"
        assert report.plan.probed_s is None

    def test_empty_space_raises(self, dataset):
        tiny = load_dataset("reddit", scale=0.01, seed=0)
        with pytest.raises(ValueError, match="plan space is empty"):
            make_planner(probe=False).plan_for_dataset(tiny, 10 ** 6)

    def test_execution_plan_dict_round_trip(self, dataset):
        plan = make_planner(probe=False).plan_for_dataset(dataset, 8).plan
        clone = ExecutionPlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert clone == plan


# ----------------------------------------------------------------------
# Config resolution + trainer integration
# ----------------------------------------------------------------------
class TestResolveConfig:
    def test_concrete_config_passes_through(self, dataset):
        config = DistTrainConfig(n_ranks=4, epochs=1)
        resolved, plan = resolve_config(dataset, config)
        assert resolved is config and plan is None

    def test_auto_fields_are_resolved(self, dataset):
        config = DistTrainConfig(n_ranks=4, algorithm=AUTO, backend=AUTO,
                                 partitioner=AUTO, epochs=1,
                                 machine="perlmutter-scaled")
        assert config.needs_planning and config.scheme_label == "AUTO"
        resolved, plan = resolve_config(dataset, config)
        assert plan is not None
        assert not resolved.needs_planning
        assert resolved.algorithm in ("1d", "1.5d")
        assert resolved.backend in ("sim", "threaded", "process")
        assert resolved.n_ranks == 4 and resolved.epochs == 1

    def test_pinned_fields_stay_pinned(self, dataset):
        config = DistTrainConfig(n_ranks=4, algorithm="1d",
                                 sparsity_aware=False, backend=AUTO,
                                 partitioner="metis_like", epochs=1)
        resolved, plan = resolve_config(dataset, config)
        assert resolved.algorithm == "1d"
        assert resolved.sparsity_aware is False
        assert resolved.partitioner == "metis_like"
        assert resolved.replication_factor == 1
        assert resolved.backend in ("sim", "threaded", "process")

    def test_auto_config_validation(self):
        config = DistTrainConfig(algorithm=AUTO)
        with pytest.raises(ValueError, match="resolve the plan"):
            config.n_block_rows
        with pytest.raises(ValueError, match="unknown communicator backend"):
            DistTrainConfig(backend="autooo")

    def test_resolve_config_returns_reusable_partition(self, dataset):
        from repro.partition import get_partitioner
        config = DistTrainConfig(n_ranks=4, algorithm=AUTO, backend="sim",
                                 partitioner="gvb", epochs=1,
                                 machine="perlmutter-scaled")
        resolved, plan, partition = resolve_config(dataset, config,
                                                   return_partition=True)
        assert plan is not None and partition is not None
        recomputed = get_partitioner("gvb", seed=resolved.seed).partition(
            dataset.adjacency, resolved.n_block_rows)
        assert np.array_equal(partition.parts, recomputed.parts)

    def test_setup_rejects_mismatched_partition(self, dataset):
        from repro.partition import get_partitioner
        config = DistTrainConfig(n_ranks=4, partitioner="gvb", epochs=1,
                                 machine="perlmutter-scaled")
        wrong = get_partitioner("gvb", seed=0).partition(dataset.adjacency, 8)
        with pytest.raises(ValueError, match="supplied partition"):
            setup_distributed(dataset, config, partition=wrong)

    def test_setup_distributed_resolves_auto(self, dataset):
        config = DistTrainConfig(n_ranks=4, algorithm=AUTO, backend="sim",
                                 partitioner=AUTO, epochs=1,
                                 machine="perlmutter-scaled")
        setup = setup_distributed(dataset, config)
        with setup.comm:
            assert setup.config is not None
            assert not setup.config.needs_planning
            assert setup.plan is not None
            assert setup.plan.backend == "sim"


class TestAutoTrainingBitIdentity:
    """variant="auto" must train bit-identically to the explicit config."""

    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_auto_matches_explicit(self, backend):
        dataset = load_dataset("reddit", scale=0.04, seed=0)
        auto_config = DistTrainConfig(
            n_ranks=4, algorithm=AUTO, partitioner=AUTO, backend=backend,
            epochs=2, machine="laptop", seed=0)
        auto_result = train_distributed(dataset, auto_config, eval_every=0)
        resolved = auto_result.config
        assert not resolved.needs_planning
        assert resolved.backend == backend

        explicit = DistTrainConfig(
            n_ranks=4,
            algorithm=resolved.algorithm,
            sparsity_aware=resolved.sparsity_aware,
            partitioner=resolved.partitioner,
            replication_factor=resolved.replication_factor,
            backend=backend, epochs=2, machine="laptop", seed=0)
        explicit_result = train_distributed(dataset, explicit, eval_every=0)

        assert [h.loss for h in auto_result.history] == \
            [h.loss for h in explicit_result.history]
        assert np.array_equal(auto_result.model.predictions(),
                              explicit_result.model.predictions())
