"""Observability layer: tracer, metrics registry, exporters, contracts.

The load-bearing guarantees tested here:

* **Zero overhead when disabled** — with tracing off (the default) the
  tracer records nothing, hands out a shared no-op span, and a training
  run produces *bit-identical* results and sim event streams to a traced
  run (so the ``BENCH_spmm.json`` determinism guard keeps holding).
* **Tracing never changes numbers** — enabling spans on any backend
  yields the same losses/accuracy as the untraced run.
* **Traces are valid Chrome/Perfetto JSON** with per-rank tracks on the
  process backend, and the sim event-log fallback still works through
  the unified :func:`repro.obs.save_trace` API.
* **Diagnostics** — a lost process-backend worker names the last
  collective it completed.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.cli import main
from repro.comm import make_communicator
from repro.comm.faults import FaultPlan, WorkerFailure
from repro.core import DistTrainConfig, train_distributed
from repro.obs import (NULL_SPAN, TRACE, MetricsRegistry, metrics_from_spans,
                       percentile, prometheus_text, save_trace, trace_events,
                       trace_summary)


@pytest.fixture(autouse=True)
def _reset_trace():
    """Tests must never leak tracer state into each other (or into the
    rest of the suite, which asserts tracing-off behaviour)."""
    TRACE.disable()
    TRACE.clear()
    yield
    TRACE.disable()
    TRACE.clear()


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_hands_out_shared_noop_span(self):
        span = TRACE.span("anything", cat="x", args={"a": 1})
        assert span is NULL_SPAN
        with span as s:
            s.set(b=2)                      # must be a silent no-op
        TRACE.add_span("rank0", "w", "worker", 0.0, 1.0)
        TRACE.annotate(c=3)
        TRACE.instant("marker")
        assert len(TRACE) == 0

    def test_nested_spans_record_in_exit_order(self):
        TRACE.enable()
        with TRACE.span("outer", cat="train"):
            with TRACE.span("inner", cat="train"):
                TRACE.annotate(step=7)
        spans = TRACE.spans()
        assert [s[1] for s in spans] == ["inner", "outer"]
        track, name, cat, t0, t1, args = spans[0]
        assert track == "driver" and cat == "train"
        assert args == {"step": 7}
        assert t0 <= t1
        outer = spans[1]
        assert outer[3] <= t0 and t1 <= outer[4]   # containment

    def test_add_span_records_foreign_tracks(self):
        TRACE.enable()
        TRACE.add_span("rank3", "worker.bcast", "worker", 1.0, 2.0,
                       {"op": "bcast"})
        (track, name, cat, t0, t1, args), = TRACE.spans()
        assert (track, name, t1 - t0) == ("rank3", "worker.bcast", 1.0)

    def test_disable_then_enable_is_clean(self):
        TRACE.enable()
        with TRACE.span("a"):
            pass
        TRACE.disable()
        with TRACE.span("b"):
            pass
        assert [s[1] for s in TRACE.spans()] == ["a"]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", 10, category="bcast", rank=0)
        reg.counter("bytes_total", 5, rank=0, category="bcast")
        flat = reg.as_dict()
        assert flat['bytes_total{category="bcast",rank="0"}'] == 15.0

    def test_gauge_overwrites_and_may_hold_strings(self):
        reg = MetricsRegistry()
        reg.gauge("lr", 0.1)
        reg.gauge("lr", 0.2)
        reg.gauge("wire_dtype", "bfloat16")
        flat = reg.as_dict()
        assert flat["lr"] == 0.2
        assert flat["wire_dtype"] == "bfloat16"

    def test_histogram_expands_to_summary_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.observe("latency_seconds", v, op="bcast")
        flat = reg.as_dict()
        base = 'latency_seconds'
        assert flat[f'{base}_count{{op="bcast"}}'] == 4
        assert flat[f'{base}_sum{{op="bcast"}}'] == 10.0
        assert flat[f'{base}_min{{op="bcast"}}'] == 1.0
        assert flat[f'{base}_max{{op="bcast"}}'] == 4.0
        assert flat[f'{base}_mean{{op="bcast"}}'] == 2.5
        assert f'{base}_p50{{op="bcast"}}' in flat
        assert f'{base}_p95{{op="bcast"}}' in flat

    def test_prometheus_text_renders_numbers_bools_and_strings(self):
        text = prometheus_text({
            "runs_total": 3.0,
            'bytes{category="bcast"}': 12,
            "overlap": True,
            "wire_dtype": "float32",
        })
        lines = text.splitlines()
        assert "runs_total 3.0" in lines
        assert 'bytes{category="bcast"} 12' in lines
        assert "overlap 1" in lines
        assert 'wire_dtype{value="float32"} 1' in lines
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_no_spans_yields_no_events(self):
        assert trace_events() == []

    def test_events_have_metadata_and_slices(self):
        TRACE.enable()
        with TRACE.span("work", cat="train", args={"epoch": 0}):
            pass
        TRACE.add_span("rank0", "worker.bcast", "worker", 0.0, 1e-3)
        events = trace_events()
        json.dumps(events)                   # must be serializable
        names = {e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert names == {"driver", "rank0"}
        slices = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in slices} == {"work", "worker.bcast"}
        assert all(s["ts"] >= 0.0 and s["dur"] >= 0.0 for s in slices)

    def test_save_trace_writes_span_trace(self, tmp_path):
        TRACE.enable()
        with TRACE.span("work"):
            pass
        out = tmp_path / "t.json"
        save_trace(None, str(out))
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    def test_save_trace_falls_back_to_sim_event_log(self, tmp_path):
        comm = make_communicator(2)
        comm.broadcast([np.ones(4), np.ones(4)][0], root=0)
        out = tmp_path / "sim.json"
        save_trace(comm, str(out))           # no spans recorded
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_save_trace_without_spans_or_sim_comm_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no spans recorded"):
            save_trace(None, str(tmp_path / "x.json"))

    def test_trace_summary_self_time_excludes_children(self):
        events = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "driver"}},
            {"name": "parent", "ph": "X", "pid": 0, "tid": 0,
             "ts": 0.0, "dur": 10.0, "args": {}},
            {"name": "child", "ph": "X", "pid": 0, "tid": 0,
             "ts": 2.0, "dur": 4.0, "args": {}},
        ]
        summary = trace_summary(events)
        by_name = {row["name"]: row for row in summary["slices"]}
        assert by_name["parent"]["self_ms"] == pytest.approx(6.0 / 1e3)
        assert by_name["child"]["self_ms"] == pytest.approx(4.0 / 1e3)
        (track,) = summary["tracks"]
        assert track["track"] == "driver" and track["slices"] == 2
        assert summary["imbalance"] == pytest.approx(0.0)

    def test_metrics_from_spans_builds_latency_histograms(self):
        TRACE.enable()
        TRACE.add_span("driver", "comm.broadcast", "bcast", 0.0, 0.5)
        TRACE.add_span("driver", "comm.broadcast", "bcast", 0.0, 1.5)
        TRACE.add_span("rank0", "worker.bcast", "worker", 0.0, 0.1)
        flat = metrics_from_spans().as_dict()
        assert flat['collective_seconds_count{op="broadcast"}'] == 2
        assert flat['collective_seconds_sum{op="broadcast"}'] == 2.0
        assert flat['spans_total{track="driver"}'] == 2
        assert flat['spans_total{track="rank0"}'] == 1


# ----------------------------------------------------------------------
# Zero-overhead + numerical-invariance contracts (satellite 3)
# ----------------------------------------------------------------------
def _tiny_config(backend: str, tmp_path=None, **kw) -> DistTrainConfig:
    kwargs = dict(n_ranks=2, epochs=2, hidden=8, n_layers=2, seed=0,
                  backend=backend)
    if tmp_path is not None:
        kwargs.update(checkpoint_dir=str(tmp_path / "ck"),
                      checkpoint_every=1)
    kwargs.update(kw)
    return DistTrainConfig(**kwargs)


class TestContracts:
    def test_sim_run_is_byte_identical_disabled_vs_enabled(self, tiny_dataset):
        cfg = _tiny_config("sim")
        r_off = train_distributed(tiny_dataset, cfg, eval_every=0)
        assert len(TRACE) == 0               # disabled run recorded nothing
        TRACE.enable()
        r_on = train_distributed(tiny_dataset, cfg, eval_every=0)
        assert len(TRACE) > 0
        assert [rec.loss for rec in r_off.history] == \
               [rec.loss for rec in r_on.history]
        # Simulated clocks and the event stream must be unaffected too —
        # this is what keeps the seed BENCH_spmm.json rows byte-identical.
        assert [rec.epoch_time_s for rec in r_off.history] == \
               [rec.epoch_time_s for rec in r_on.history]
        assert r_off.total_time_s == r_on.total_time_s
        assert list(r_off.model.comm.events) == list(r_on.model.comm.events)
        assert r_off.test_accuracy == r_on.test_accuracy

    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_real_backends_numerics_unchanged_by_tracing(self, tiny_dataset,
                                                         backend):
        cfg = _tiny_config(backend)
        r_off = train_distributed(tiny_dataset, cfg, eval_every=0)
        TRACE.enable()
        r_on = train_distributed(tiny_dataset, cfg, eval_every=0)
        assert [rec.loss for rec in r_off.history] == \
               [rec.loss for rec in r_on.history]
        assert r_off.test_accuracy == r_on.test_accuracy

    def test_traced_sim_run_emits_expected_span_families(self, tiny_dataset,
                                                         tmp_path):
        TRACE.enable()
        cfg = _tiny_config("sim", tmp_path, grad_overlap=True)
        train_distributed(tiny_dataset, cfg, eval_every=0)
        names = {s[1] for s in TRACE.spans()}
        for expected in ("epoch", "forward", "backward", "optimizer",
                         "spmm", "spmm.stage", "gradsync.post",
                         "gradsync.drain", "checkpoint.save"):
            assert expected in names, f"missing span {expected}: {names}"
        assert any(n.startswith("comm.") for n in names)

    def test_process_trace_has_per_rank_worker_tracks(self, tiny_dataset,
                                                      tmp_path):
        TRACE.enable()
        cfg = _tiny_config("process", tmp_path, epochs=1)
        result = train_distributed(tiny_dataset, cfg, eval_every=0)
        out = tmp_path / "proc.json"
        save_trace(result, str(out))
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        tracks = {e["args"]["name"]: e["tid"] for e in events
                  if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {"driver", "rank0", "rank1"} <= set(tracks)
        for rank in ("rank0", "rank1"):
            tid = tracks[rank]
            rank_slices = [e for e in events
                           if e.get("ph") == "X" and e["tid"] == tid]
            assert rank_slices, f"no slices on {rank}"
            assert all(e["name"].startswith("worker.") for e in rank_slices)

    def test_result_metrics_registry_snapshot(self, tiny_dataset, tmp_path):
        cfg = _tiny_config("sim", tmp_path, grad_overlap=True)
        result = train_distributed(tiny_dataset, cfg, eval_every=0)
        m = result.metrics
        assert m["restarts_total"] == 0
        assert 'time_s_per_epoch{category="local"}' in m
        assert any(k.startswith("comm_bytes_total{") for k in m)
        assert m["checkpoint_save_seconds_count"] == cfg.epochs
        # The derived trio the CLI prints comes from this same dict.
        assert m["gradsync_comm_s_per_epoch"] >= 0.0
        assert m["gradsync_compute_s_per_epoch"] >= 0.0
        assert m["overlap_hidden_s_per_epoch"] <= \
               m["gradsync_comm_s_per_epoch"]
        prometheus_text(m)                   # must serialize cleanly


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_train_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        prom_path = tmp_path / "m.prom"
        rc = main(["train", "--dataset", "reddit", "--scale", "0.05",
                   "--ranks", "2", "--epochs", "1",
                   "--trace", str(trace_path), "--metrics", str(prom_path)])
        assert rc == 0
        payload = json.loads(trace_path.read_text())
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])
        prom = prom_path.read_text()
        assert "restarts_total 0" in prom
        out = capsys.readouterr().out
        assert "wrote trace" in out and "wrote metrics" in out

        rc = main(["trace", "view", str(trace_path), "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top slices by self time" in out
        assert "imbalance" in out

    def test_trace_view_rejects_non_trace_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace", "view", str(bogus)]) == 1


# ----------------------------------------------------------------------
# Failure diagnostics (satellite 2)
# ----------------------------------------------------------------------
class TestFailureDiagnostics:
    def test_lost_worker_names_last_completed_collective(self):
        comm = make_communicator(2, backend="process")
        try:
            comm.inject_faults(FaultPlan.kill(rank=1, op_index=1))
            comm.note_epoch(0)
            out = comm.allreduce([np.ones(2)] * 2)   # op 0 completes
            np.testing.assert_array_equal(out[0], np.full(2, 2.0))
            with pytest.raises(WorkerFailure) as excinfo:
                comm.broadcast(np.ones(4), root=0)   # op 1: rank 1 dies
            msg = str(excinfo.value)
            assert "rank 1" in msg
            assert "last completed" in msg
            assert "epoch 0" in msg
        finally:
            comm.close()


# ----------------------------------------------------------------------
# Summarizer edge cases: empty and single-span runs, n=1 histograms
# ----------------------------------------------------------------------
class TestSummaryEdgeCases:
    """The serve/trace tooling feeds tiny runs (one request, one span)
    through the same summarizers as full training runs — the degenerate
    shapes must not divide by zero or index past the end."""

    def test_trace_summary_of_empty_trace(self):
        summary = trace_summary({"traceEvents": []})
        assert summary == {"slices": [], "tracks": [], "imbalance": 0.0}

    def test_trace_summary_of_single_span_run(self):
        TRACE.enable()
        TRACE.add_span("driver", "serve.batch", "serve", 1.0, 1.5,
                       {"requests": 1})
        summary = trace_summary(trace_events())
        assert [s["name"] for s in summary["slices"]] == ["serve.batch"]
        assert summary["slices"][0]["count"] == 1
        assert summary["slices"][0]["self_ms"] == pytest.approx(500.0)
        (track,) = summary["tracks"]
        assert track["track"] == "driver" and track["slices"] == 1
        # One track is trivially balanced: max/mean - 1 == 0.
        assert summary["imbalance"] == 0.0

    def test_metrics_from_spans_on_empty_tracer(self):
        assert metrics_from_spans().as_dict() == {}

    def test_metrics_from_spans_on_single_span(self):
        TRACE.enable()
        TRACE.add_span("rank0", "comm.bcast", "worker", 0.0, 0.25)
        flat = metrics_from_spans().as_dict()
        assert flat['spans_total{track="rank0"}'] == 1.0
        assert flat['collective_seconds_count{op="bcast"}'] == 1.0
        assert flat['collective_seconds_p99{op="bcast"}'] == 0.25

    def test_histogram_percentiles_collapse_at_n_1(self):
        reg = MetricsRegistry()
        reg.observe("latency_seconds", 0.125)
        flat = reg.as_dict()
        # With one sample every summary statistic is that sample.
        for stat in ("min", "max", "mean", "p50", "p95", "p99"):
            assert flat[f"latency_seconds_{stat}"] == 0.125
        assert flat["latency_seconds_count"] == 1.0
        assert flat["latency_seconds_sum"] == 0.125

    def test_percentile_helper_matches_histogram_expansion(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        reg = MetricsRegistry()
        for v in values:
            reg.observe("x", v)
        flat = reg.as_dict()
        assert percentile(values, 0.50) == flat["x_p50"]
        assert percentile(values, 0.99) == flat["x_p99"]
        assert percentile([7.5], 0.99) == 7.5
        assert math.isnan(percentile([], 0.5))
