"""Tests for the multilevel driver and the METIS-like / GVB partitioners."""

import numpy as np
import pytest

from repro.graphs.generators import (community_ring_graph, degree_corrected_sbm,
                                     erdos_renyi_graph, grid_graph)
from repro.partition import (GVBPartitioner, MetisLikePartitioner,
                             MultilevelConfig, MultilevelPartitioner,
                             RandomPartitioner, communication_volumes_1d,
                             edgecut)


@pytest.fixture(scope="module")
def structured_graph():
    return community_ring_graph(240, avg_degree=10, n_communities=12, seed=0)


@pytest.fixture(scope="module")
def irregular_graph():
    return degree_corrected_sbm(400, avg_degree=10, n_communities=10,
                                p_internal=0.75, exponent=2.1, seed=0)


class TestMultilevelDriver:
    def test_single_part_trivial(self, structured_graph):
        result = MultilevelPartitioner().partition(structured_graph, 1)
        assert np.all(result.parts == 0)
        assert result.stats["edgecut"] == 0

    def test_every_part_nonempty(self, structured_graph):
        for nparts in (2, 5, 8, 16):
            result = MultilevelPartitioner().partition(structured_graph, nparts)
            sizes = result.part_sizes()
            assert sizes.min() >= 1, f"empty part for nparts={nparts}"
            assert sizes.sum() == structured_graph.shape[0]

    def test_deterministic_given_seed(self, structured_graph):
        cfg = MultilevelConfig(seed=4)
        a = MultilevelPartitioner(cfg).partition(structured_graph, 6).parts
        b = MultilevelPartitioner(cfg).partition(structured_graph, 6).parts
        np.testing.assert_array_equal(a, b)

    def test_reports_levels(self, structured_graph):
        result = MultilevelPartitioner().partition(structured_graph, 4)
        assert "coarsening_levels" in result.stats

    def test_handles_graph_smaller_than_coarsening_target(self):
        adj = erdos_renyi_graph(40, avg_degree=4, seed=1)
        result = MultilevelPartitioner().partition(adj, 4)
        assert set(np.unique(result.parts)) == set(range(4))

    def test_nparts_equal_to_n(self):
        adj = grid_graph(4)  # 16 vertices
        result = MultilevelPartitioner().partition(adj, 16)
        assert result.part_sizes().max() == 1


class TestMetisLike:
    def test_beats_random_on_structured_graph(self, structured_graph):
        metis = MetisLikePartitioner(seed=0).partition(structured_graph, 8)
        rand = RandomPartitioner(seed=0).partition(structured_graph, 8)
        assert metis.stats["edgecut"] < 0.7 * rand.stats["edgecut"]

    def test_vertex_balance_tight(self, structured_graph):
        result = MetisLikePartitioner(seed=0).partition(structured_graph, 8)
        assert result.stats["vertex_imbalance"] <= 1.25

    def test_grid_bisection_quality(self):
        adj = grid_graph(12)   # 144 vertices, optimal bisection cut = 12
        result = MetisLikePartitioner(seed=0).partition(adj, 2)
        assert result.stats["edgecut"] <= 3 * 12

    def test_method_label(self, structured_graph):
        assert MetisLikePartitioner().partition(structured_graph, 4).method \
            == "metis_like"


class TestGVB:
    def test_reduces_bottleneck_vs_metis(self, irregular_graph):
        """On an irregular graph GVB should not have a larger communication
        bottleneck (max send/recv volume) than the METIS-like partitioner."""
        nparts = 12
        metis = MetisLikePartitioner(seed=0).partition(irregular_graph, nparts)
        gvb = GVBPartitioner(seed=0).partition(irregular_graph, nparts)
        vol_m = communication_volumes_1d(irregular_graph, metis.parts, nparts)
        vol_g = communication_volumes_1d(irregular_graph, gvb.parts, nparts)
        bottleneck_m = max(vol_m.max_send, vol_m.max_recv)
        bottleneck_g = max(vol_g.max_send, vol_g.max_recv)
        assert bottleneck_g <= bottleneck_m * 1.05

    def test_total_volume_still_far_below_random(self, irregular_graph):
        nparts = 12
        gvb = GVBPartitioner(seed=0).partition(irregular_graph, nparts)
        rand = RandomPartitioner(seed=0).partition(irregular_graph, nparts)
        assert gvb.stats["total_volume"] < rand.stats["total_volume"]

    def test_balance_is_looser_but_bounded(self, irregular_graph):
        gvb = GVBPartitioner(volume_balance_factor=1.2, seed=0)
        result = gvb.partition(irregular_graph, 8)
        assert result.stats["vertex_imbalance"] <= 1.45

    def test_method_label(self, structured_graph):
        assert GVBPartitioner().partition(structured_graph, 4).method == "gvb"

    def test_near_zero_cut_on_regular_graph(self, structured_graph):
        """The Protein-style regular graph should partition almost
        perfectly (the mechanism behind the paper's 14x best case)."""
        nparts = 12
        gvb = GVBPartitioner(seed=0).partition(structured_graph, nparts)
        rand = RandomPartitioner(seed=0).partition(structured_graph, nparts)
        assert gvb.stats["total_volume"] < 0.5 * rand.stats["total_volume"]

    def test_deterministic(self, irregular_graph):
        a = GVBPartitioner(seed=1).partition(irregular_graph, 6).parts
        b = GVBPartitioner(seed=1).partition(irregular_graph, 6).parts
        np.testing.assert_array_equal(a, b)
