"""Chaos-conformance harness: fault injection and failure semantics.

The fault-tolerance claims (supervised restart, checkpoint resume,
elastic re-plan) rest on every backend surfacing a lost rank the same
way: a structured :class:`~repro.comm.faults.WorkerFailure` carrying the
rank, followed by a communicator that is *cleanly closed* — idempotent
``close()``, reporting still readable, no leaked resources.  This module
centralises that contract as a registry of *chaos checks*, mirroring
``comm_conformance.py``: each check is a callable ``check(make)`` where
``make(nranks, **kw)`` returns a live communicator of the backend under
test, and ``tests/test_comm_chaos.py`` drives the registry over every
backend in :data:`CHAOS_BACKENDS` (plus process-backend-specific shm
leak checks layered on top).

Checks assert behaviour all backends must share:

* an injected ``kill`` surfaces as :class:`WorkerFailure` with the
  correct ``rank``/``backend`` attributes;
* faults fire **once** per plan — a plan re-injected into a fresh
  communicator (the supervised-restart pattern) does not re-fire;
* epoch/op addressing — a fault scheduled for epoch 1 leaves epoch 0
  untouched;
* ``delay`` faults charge simulated time on the simulator and wall time
  on real backends;
* after a failure the communicator is safe: ``close()`` is idempotent
  and reporting (events, elapsed, breakdown) survives.

Process-only properties (SIGKILLed OS worker, shm unlink guarantees,
bounded teardown latency with already-dead pids) live in the driver —
they cannot be phrased against in-process backends.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

import numpy as np
import pytest

from repro.comm.faults import FaultPlan, FaultSpec, WorkerFailure

__all__ = ["CHAOS_BACKENDS", "CHAOS_CHECKS", "chaos_check"]

#: Every backend that must pass the chaos suite.
CHAOS_BACKENDS = ("sim", "threaded", "process")

#: name -> check callable ``(make) -> None``.
CHAOS_CHECKS: Dict[str, Callable] = {}


def chaos_check(fn: Callable) -> Callable:
    """Register ``fn`` as a named chaos check."""
    name = fn.__name__
    if name.startswith("check_"):
        name = name[len("check_"):]
    CHAOS_CHECKS[name] = fn
    return fn


# ----------------------------------------------------------------------
# Injected kill -> structured WorkerFailure
# ----------------------------------------------------------------------
@chaos_check
def check_injected_kill_raises_worker_failure(make):
    """A kill fault surfaces as WorkerFailure with the lost rank, on the
    collective it addresses — not before, not silently."""
    comm = make(4)
    comm.inject_faults(FaultPlan.kill(rank=2, op_index=1))
    # op 0 is unaffected.
    out = comm.allreduce([np.ones(3)] * 4)
    np.testing.assert_array_equal(out[0], np.full(3, 4.0))
    with pytest.raises(WorkerFailure) as excinfo:
        comm.broadcast(np.ones(8), root=0)      # op 1: boom
    assert excinfo.value.rank == 2
    assert excinfo.value.backend == comm.backend_name
    assert "rank 2" in str(excinfo.value)


@chaos_check
def check_kill_mid_exchange(make):
    """The fault point also covers the batched point-to-point path the
    sparsity-aware SpMMs use."""
    comm = make(3)
    comm.inject_faults(FaultPlan.kill(rank=1))
    with pytest.raises(WorkerFailure) as excinfo:
        comm.exchange([(0, 1, np.ones(4)), (2, 0, np.ones(2))])
    assert excinfo.value.rank == 1


@chaos_check
def check_kill_fires_once_across_restart(make):
    """Re-injecting the same plan into a fresh communicator (supervised
    restart) must not re-kill: each spec fires once per plan instance."""
    plan = FaultPlan.kill(rank=0, op_index=0)
    comm = make(3)
    comm.inject_faults(plan)
    with pytest.raises(WorkerFailure):
        comm.allreduce([np.ones(2)] * 3)
    assert plan.exhausted
    comm.close()

    retry = make(3)
    retry.inject_faults(plan)               # same, already-fired plan
    out = retry.allreduce([np.ones(2)] * 3)
    np.testing.assert_array_equal(out[0], np.full(2, 3.0))


@chaos_check
def check_epoch_addressing(make):
    """A fault scheduled for epoch 1 leaves epoch 0 untouched and fires
    at the addressed collective of epoch 1."""
    plan = FaultPlan.kill(rank=1, epoch=1, op_index=0)
    comm = make(3)
    comm.inject_faults(plan)
    plan.start_epoch(0)
    for _ in range(3):                       # a whole epoch of collectives
        comm.allreduce([np.ones(2)] * 3)
    assert not plan.exhausted
    plan.start_epoch(1)
    with pytest.raises(WorkerFailure):
        comm.allreduce([np.ones(2)] * 3)


@chaos_check
def check_multi_fault_plan(make):
    """Plans compose: a delay and a kill in one plan fire independently
    at their own addresses."""
    plan = FaultPlan.delay(0.0, rank=0, op_index=0).add(
        FaultSpec("kill", rank=2, op_index=2))
    comm = make(4)
    comm.inject_faults(plan)
    comm.broadcast(np.ones(2), root=0)       # op 0: zero-delay fires
    comm.broadcast(np.ones(2), root=1)       # op 1: nothing
    with pytest.raises(WorkerFailure) as excinfo:
        comm.allreduce([np.ones(2)] * 4)     # op 2: kill
    assert excinfo.value.rank == 2
    assert plan.exhausted


# ----------------------------------------------------------------------
# Delay faults
# ----------------------------------------------------------------------
@chaos_check
def check_delay_fault_charges_time(make):
    """Delays are real: simulated seconds on the simulator, wall seconds
    on backends that move actual bytes."""
    comm = make(2)
    if comm.backend_name == "sim":
        comm.inject_faults(FaultPlan.delay(1.5, rank=1))
        before = comm.elapsed()
        comm.broadcast(np.ones(2), root=0)
        assert comm.elapsed() - before >= 1.5, \
            "simulator must charge the delay to the simulated clock"
    else:
        comm.inject_faults(FaultPlan.delay(0.15, rank=1))
        start = time.monotonic()
        comm.broadcast(np.ones(2), root=0)
        assert time.monotonic() - start >= 0.14, \
            "real backends must physically sleep the delay"


# ----------------------------------------------------------------------
# Post-failure communicator state
# ----------------------------------------------------------------------
@chaos_check
def check_close_idempotent_after_failure(make):
    """After a WorkerFailure the communicator closes cleanly: repeated
    close() calls are no-ops and reporting survives."""
    comm = make(3)
    comm.broadcast(np.ones((4, 2)), root=0)   # some traffic first
    bytes_before = comm.events.total_bytes()
    comm.inject_faults(FaultPlan.kill(rank=0))
    with pytest.raises(WorkerFailure):
        comm.allreduce([np.ones(2)] * 3)
    comm.close()
    comm.close()
    assert comm.events.total_bytes() >= bytes_before
    comm.elapsed()
    comm.breakdown()
    comm.stats_summary()


@chaos_check
def check_context_manager_propagates_failure(make):
    """The with-statement pattern the trainer uses: the failure escapes
    the block and close() has already run (no hang, no leak)."""
    with pytest.raises(WorkerFailure):
        with make(3) as comm:
            comm.inject_faults(FaultPlan.kill(rank=1))
            comm.allreduce([np.ones(2)] * 3)
    comm.close()                              # idempotent after __exit__


@chaos_check
def check_no_fault_plan_is_free(make):
    """Injecting None (or never injecting) leaves collectives untouched —
    the hook must be invisible when unused."""
    comm = make(3)
    comm.inject_faults(None)
    out = comm.allreduce([np.ones(2)] * 3)
    np.testing.assert_array_equal(out[0], np.full(2, 3.0))
