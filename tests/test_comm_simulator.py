"""Tests for the simulated communicator (repro.comm.simulator)."""

import numpy as np
import pytest

from repro.comm import make_communicator


class TestConstruction:
    def test_requires_positive_ranks(self):
        with pytest.raises(ValueError):
            make_communicator(0)

    def test_stats_facade(self):
        comm = make_communicator(2)
        assert comm.stats.total_bytes() == 0
        assert comm.stats.elapsed() == 0.0

    def test_reset(self):
        comm = make_communicator(2)
        comm.charge_seconds(0, 1.0)
        comm.broadcast(np.ones(4), root=0)
        comm.reset()
        assert comm.stats.elapsed() == 0.0
        assert len(comm.events) == 0

    def test_group_validation(self):
        comm = make_communicator(4)
        with pytest.raises(ValueError):
            comm.barrier(ranks=[0, 0])
        with pytest.raises(ValueError):
            comm.barrier(ranks=[0, 7])


class TestComputeCharging:
    def test_charges_accumulate_per_category(self):
        comm = make_communicator(2)
        comm.charge_spmm(0, comm.machine.spmm_flop_rate)  # exactly 1 second
        comm.charge_gemm(1, comm.machine.gemm_flop_rate)
        assert comm.timeline.now(0) == pytest.approx(1.0)
        assert comm.timeline.now(1) == pytest.approx(1.0)
        assert comm.timeline.breakdown()["local"] == pytest.approx(1.0)

    def test_elementwise_and_seconds(self):
        comm = make_communicator(1)
        dt = comm.charge_elementwise(0, comm.machine.elementwise_rate)
        assert dt == pytest.approx(1.0)
        comm.charge_seconds(0, 0.5, category="misc")
        assert comm.timeline.breakdown()["misc"] == pytest.approx(0.5)

    def test_barrier_synchronises(self):
        comm = make_communicator(3)
        comm.charge_seconds(1, 2.0)
        comm.barrier()
        assert np.allclose(comm.timeline.clocks, 2.0)


class TestBroadcast:
    def test_data_is_delivered_to_every_rank(self):
        comm = make_communicator(3)
        data = np.arange(6.0)
        out = comm.broadcast(data, root=1)
        assert len(out) == 3
        for arr in out:
            np.testing.assert_array_equal(arr, data)

    def test_non_root_receives_a_copy(self):
        comm = make_communicator(2)
        data = np.zeros(4)
        out = comm.broadcast(data, root=0)
        out[1][0] = 99.0
        assert data[0] == 0.0
        assert out[0] is data

    def test_records_events_and_time(self):
        comm = make_communicator(4)
        comm.broadcast(np.ones(128), root=0, category="bcast")
        assert comm.events.message_count("bcast") == 3
        assert comm.timeline.breakdown()["bcast"] > 0

    def test_root_must_be_in_group(self):
        comm = make_communicator(4)
        with pytest.raises(ValueError):
            comm.broadcast(np.ones(2), root=3, ranks=[0, 1])

    def test_subgroup_broadcast_leaves_others_untouched(self):
        comm = make_communicator(4)
        comm.broadcast(np.ones(8), root=0, ranks=[0, 1])
        assert comm.timeline.now(2) == 0.0


class TestAllreduce:
    def test_sum_result(self):
        comm = make_communicator(3)
        arrays = [np.full(4, float(i)) for i in range(3)]
        out = comm.allreduce(arrays)
        for arr in out:
            np.testing.assert_allclose(arr, 3.0)

    def test_max_and_min_ops(self):
        comm = make_communicator(2)
        arrays = [np.array([1.0, 5.0]), np.array([3.0, 2.0])]
        np.testing.assert_allclose(comm.allreduce(arrays, op="max")[0],
                                   [3.0, 5.0])
        np.testing.assert_allclose(comm.allreduce(arrays, op="min")[1],
                                   [1.0, 2.0])

    def test_unknown_op(self):
        comm = make_communicator(2)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2), np.ones(2)], op="prod")

    def test_shape_mismatch_rejected(self):
        comm = make_communicator(2)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2), np.ones(3)])

    def test_wrong_count_rejected(self):
        comm = make_communicator(3)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2)] * 2)

    def test_subgroup_allreduce(self):
        comm = make_communicator(4)
        out = comm.allreduce([np.ones(2), 2 * np.ones(2)], ranks=[1, 3])
        np.testing.assert_allclose(out[0], 3.0)
        assert comm.timeline.now(0) == 0.0

    def test_results_are_independent_copies(self):
        comm = make_communicator(2)
        out = comm.allreduce([np.ones(2), np.ones(2)])
        out[0][0] = 42.0
        assert out[1][0] == pytest.approx(2.0)


class TestReduceAndAllgather:
    def test_reduce_only_root_gets_result(self):
        comm = make_communicator(3)
        out = comm.reduce([np.ones(2)] * 3, root=2)
        assert out[0] is None and out[1] is None
        np.testing.assert_allclose(out[2], 3.0)

    def test_allgather_everyone_gets_everything(self):
        comm = make_communicator(2)
        out = comm.allgather([np.array([1.0]), np.array([2.0])])
        assert out[0][1][0] == 2.0
        assert out[1][0][0] == 1.0


class TestAlltoallv:
    def _payloads(self, p, size=4):
        return [[np.full(size, 10 * i + j, dtype=np.float64)
                 if i != j else None for j in range(p)] for i in range(p)]

    def test_transpose_delivery(self):
        comm = make_communicator(3)
        send = self._payloads(3)
        recv = comm.alltoallv(send)
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                np.testing.assert_array_equal(recv[i][j], send[j][i])

    def test_event_volume_matches_payloads(self):
        comm = make_communicator(3)
        send = self._payloads(3, size=8)
        comm.alltoallv(send)
        total = sum(arr.nbytes for row in send for arr in row if arr is not None)
        assert comm.stats.total_bytes("alltoall") == total

    def test_none_payloads_cost_nothing(self):
        comm = make_communicator(2)
        recv = comm.alltoallv([[None, None], [None, None]])
        assert recv[0][1] is None
        assert comm.stats.total_bytes() == 0
        assert comm.timeline.elapsed() == 0.0

    def test_shape_validation(self):
        comm = make_communicator(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[None, None]])
        with pytest.raises(ValueError):
            comm.alltoallv([[None], [None]])

    def test_clocks_synchronised_after_exchange(self):
        comm = make_communicator(3)
        comm.alltoallv(self._payloads(3))
        clocks = comm.timeline.clocks
        assert np.allclose(clocks, clocks[0])


class TestExchange:
    def test_delivery_and_events(self):
        comm = make_communicator(4)
        msgs = [(0, 1, np.ones(16)), (2, 3, np.zeros(8))]
        out = comm.exchange(msgs, category="p2p")
        np.testing.assert_array_equal(out[(0, 1)], np.ones(16))
        assert comm.events.message_count("p2p") == 2

    def test_self_message_is_free(self):
        comm = make_communicator(2)
        comm.exchange([(1, 1, np.ones(100))])
        assert comm.stats.total_bytes() == 0

    def test_invalid_rank_rejected(self):
        comm = make_communicator(2)
        with pytest.raises(ValueError):
            comm.exchange([(0, 5, np.ones(2))])

    def test_sender_with_many_messages_is_bottleneck(self):
        comm = make_communicator(4)
        msgs = [(0, j, np.ones(100000)) for j in range(1, 4)]
        comm.exchange(msgs)
        per_rank = comm.timeline.per_rank_breakdown()["p2p"]
        assert per_rank[0] == pytest.approx(per_rank.max())
