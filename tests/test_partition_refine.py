"""Tests for the edgecut and volume refinement passes."""

import numpy as np
import pytest

from repro.graphs.generators import (community_ring_graph, erdos_renyi_graph,
                                     grid_graph)
from repro.partition import communication_volumes_1d, edgecut
from repro.partition.refine import (edgecut_refine, part_weight_vector,
                                    rebalance, weighted_edgecut)
from repro.partition.volume_refine import VolumeState, volume_refine


class TestHelpers:
    def test_part_weight_vector(self):
        parts = np.array([0, 1, 1, 2])
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        assert part_weight_vector(parts, weights, 3).tolist() == [1.0, 5.0, 4.0]

    def test_weighted_edgecut_matches_unweighted_for_unit_weights(self):
        adj = erdos_renyi_graph(40, avg_degree=4, seed=0)
        parts = np.random.default_rng(0).integers(0, 3, size=40)
        assert weighted_edgecut(adj, parts) == pytest.approx(
            float(edgecut(adj, parts)))


class TestEdgecutRefine:
    def test_never_increases_cut(self):
        adj = community_ring_graph(160, avg_degree=8, n_communities=8, seed=0)
        parts = np.random.default_rng(0).integers(0, 8, size=160)
        before = edgecut(adj, parts)
        refined, moves = edgecut_refine(adj, parts, 8, seed=0)
        after = edgecut(adj, refined)
        assert after <= before
        assert moves >= 0

    def test_improves_bad_partition_of_structured_graph(self):
        adj = community_ring_graph(160, avg_degree=10, n_communities=4, seed=1)
        parts = np.random.default_rng(1).integers(0, 4, size=160)
        refined, moves = edgecut_refine(adj, parts, 4, balance_factor=1.3,
                                        max_passes=10, seed=0)
        assert edgecut(adj, refined) < edgecut(adj, parts)
        assert moves > 0

    def test_respects_balance_constraint(self):
        adj = erdos_renyi_graph(100, avg_degree=6, seed=2)
        parts = np.random.default_rng(2).integers(0, 4, size=100)
        refined, _ = edgecut_refine(adj, parts, 4, balance_factor=1.10, seed=0)
        sizes = np.bincount(refined, minlength=4)
        before_max = np.bincount(parts, minlength=4).max()
        # The constraint only restricts *receiving* parts, so the maximum
        # cannot grow beyond max(initial max, tolerance).
        assert sizes.max() <= max(before_max, int(np.ceil(1.10 * 25)))

    def test_perfect_partition_is_fixed_point(self):
        adj = grid_graph(6)
        parts = (np.arange(36) // 18).astype(np.int64)  # top/bottom halves
        refined, moves = edgecut_refine(adj, parts, 2, seed=0)
        assert edgecut(adj, refined) <= edgecut(adj, parts)

    def test_invalid_balance_factor(self):
        adj = grid_graph(4)
        with pytest.raises(ValueError):
            edgecut_refine(adj, np.zeros(16, dtype=int), 1, balance_factor=0.9)

    def test_output_is_new_array(self):
        adj = grid_graph(4)
        parts = (np.arange(16) % 2).astype(np.int64)
        refined, _ = edgecut_refine(adj, parts, 2, seed=0)
        assert refined is not parts


class TestRebalance:
    def test_fixes_gross_imbalance(self):
        adj = community_ring_graph(120, avg_degree=6, n_communities=6, seed=0)
        parts = np.zeros(120, dtype=np.int64)
        parts[:10] = np.arange(10) % 4  # parts 0..3 exist, 0 is huge
        out = rebalance(adj, parts, 4, balance_factor=1.2, seed=0)
        sizes = np.bincount(out, minlength=4)
        assert sizes.max() <= 1.2 * 120 / 4 + 1

    def test_balanced_input_untouched(self):
        adj = grid_graph(4)
        parts = (np.arange(16) % 4).astype(np.int64)
        out = rebalance(adj, parts, 4, balance_factor=1.25, seed=0)
        np.testing.assert_array_equal(out, parts)


class TestVolumeState:
    def _state(self, adj, parts, nparts):
        return VolumeState.build(adj.tocsr(), parts, nparts,
                                 np.ones(adj.shape[0]))

    def test_build_matches_metrics(self):
        adj = erdos_renyi_graph(50, avg_degree=5, seed=3)
        parts = np.random.default_rng(3).integers(0, 4, size=50)
        state = self._state(adj, parts, 4)
        vol = communication_volumes_1d(adj, parts, 4)
        np.testing.assert_array_equal(state.send_volume, vol.send_volume)
        np.testing.assert_array_equal(state.recv_volume, vol.recv_volume)
        assert state.total_volume == vol.total

    def test_move_deltas_match_recomputation(self):
        adj = erdos_renyi_graph(40, avg_degree=5, seed=4)
        parts = np.random.default_rng(4).integers(0, 3, size=40)
        state = self._state(adj, parts, 3)
        indptr, indices = adj.tocsr().indptr, adj.tocsr().indices
        # Try a handful of moves and check the incremental deltas agree
        # with a full recomputation.
        rng = np.random.default_rng(0)
        for _ in range(10):
            v = int(rng.integers(0, 40))
            p = parts[v]
            q = int((p + 1) % 3)
            delta = state.move_deltas(indptr, indices, v, q)
            new_parts = state.parts.copy()
            new_parts[v] = q
            vol_new = communication_volumes_1d(adj, new_parts, 3)
            np.testing.assert_array_equal(
                state.send_volume + delta.delta_send, vol_new.send_volume)
            np.testing.assert_array_equal(
                state.recv_volume + delta.delta_recv, vol_new.recv_volume)
            # Apply and keep going so later moves start from a new state.
            state.apply_move(indptr, indices, v, q, np.ones(40), delta)
            parts = state.parts

    def test_apply_move_keeps_state_consistent(self):
        adj = erdos_renyi_graph(30, avg_degree=4, seed=5)
        parts = np.random.default_rng(5).integers(0, 3, size=30)
        state = self._state(adj, parts, 3)
        csr = adj.tocsr()
        v = int(np.flatnonzero(np.diff(csr.indptr) > 0)[0])
        q = int((parts[v] + 1) % 3)
        delta = state.move_deltas(csr.indptr, csr.indices, v, q)
        state.apply_move(csr.indptr, csr.indices, v, q, np.ones(30), delta)
        rebuilt = VolumeState.build(csr, state.parts, 3, np.ones(30))
        np.testing.assert_array_equal(state.send_volume, rebuilt.send_volume)
        np.testing.assert_array_equal(state.recv_volume, rebuilt.recv_volume)
        np.testing.assert_array_equal(state.send_count, rebuilt.send_count)
        np.testing.assert_array_equal(state.nbr_part_count,
                                      rebuilt.nbr_part_count)


class TestVolumeRefine:
    def test_never_worsens_objective(self):
        adj = community_ring_graph(160, avg_degree=8, n_communities=8, seed=2)
        parts = np.random.default_rng(2).integers(0, 8, size=160)
        before = communication_volumes_1d(adj, parts, 8)
        refined, moves = volume_refine(adj, parts, 8, seed=0)
        after = communication_volumes_1d(adj, refined, 8)
        w = 8 / 2.0
        cost_before = before.total + w * max(before.max_send, before.max_recv)
        cost_after = after.total + w * max(after.max_send, after.max_recv)
        assert cost_after <= cost_before

    def test_reduces_bottleneck_on_structured_graph(self):
        adj = community_ring_graph(200, avg_degree=10, n_communities=8, seed=3)
        parts = np.random.default_rng(3).integers(0, 8, size=200)
        before = communication_volumes_1d(adj, parts, 8)
        refined, _ = volume_refine(adj, parts, 8, max_passes=10, seed=0)
        after = communication_volumes_1d(adj, refined, 8)
        assert max(after.max_send, after.max_recv) <= \
            max(before.max_send, before.max_recv)

    def test_respects_compute_balance(self):
        adj = erdos_renyi_graph(120, avg_degree=6, seed=6)
        parts = np.arange(120) % 6
        refined, _ = volume_refine(adj, parts, 6, balance_factor=1.15, seed=0)
        sizes = np.bincount(refined, minlength=6)
        assert sizes.max() <= np.ceil(1.15 * 20) + 1

    def test_partition_stays_valid(self):
        adj = erdos_renyi_graph(80, avg_degree=5, seed=7)
        parts = np.random.default_rng(7).integers(0, 5, size=80)
        refined, _ = volume_refine(adj, parts, 5, seed=0)
        assert refined.shape == (80,)
        assert refined.min() >= 0 and refined.max() < 5
