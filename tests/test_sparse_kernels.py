"""Unit tests for the raw-array kernels in repro.sparse.kernels.

Every kernel is checked against the corresponding scipy.sparse operation on
small hand-built and random matrices.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import kernels


def random_csr(n_rows, n_cols, density, seed):
    rng = np.random.default_rng(seed)
    mat = sp.random(n_rows, n_cols, density=density, random_state=rng,
                    format="csr")
    mat.sort_indices()
    return mat


# ----------------------------------------------------------------------
# Structural helpers
# ----------------------------------------------------------------------
class TestExpandCompress:
    def test_expand_simple(self):
        indptr = np.array([0, 2, 2, 5])
        np.testing.assert_array_equal(kernels.expand_indptr(indptr),
                                      [0, 0, 2, 2, 2])

    def test_expand_empty_matrix(self):
        np.testing.assert_array_equal(kernels.expand_indptr([0, 0, 0]), [])

    def test_expand_rejects_decreasing(self):
        with pytest.raises(ValueError):
            kernels.expand_indptr([0, 3, 1])

    def test_compress_round_trip(self):
        indptr = np.array([0, 1, 1, 4, 6])
        rows = kernels.expand_indptr(indptr)
        np.testing.assert_array_equal(kernels.compress_rows(rows, 4), indptr)

    def test_compress_rejects_unsorted(self):
        with pytest.raises(ValueError):
            kernels.compress_rows(np.array([1, 0]), 2)

    def test_compress_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            kernels.compress_rows(np.array([0, 5]), 3)


class TestCooToCsr:
    def test_matches_scipy(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 10, size=40)
        cols = rng.integers(0, 8, size=40)
        data = rng.normal(size=40)
        indptr, indices, vals = kernels.coo_to_csr_arrays(10, 8, rows, cols, data)
        ours = sp.csr_matrix((vals, indices, indptr), shape=(10, 8)).toarray()
        ref = sp.coo_matrix((data, (rows, cols)), shape=(10, 8)).toarray()
        np.testing.assert_allclose(ours, ref)

    def test_duplicates_are_summed(self):
        rows = np.array([0, 0, 1])
        cols = np.array([1, 1, 0])
        data = np.array([2.0, 3.0, 1.0])
        indptr, indices, vals = kernels.coo_to_csr_arrays(2, 2, rows, cols, data)
        assert indptr.tolist() == [0, 1, 2]
        assert indices.tolist() == [1, 0]
        np.testing.assert_allclose(vals, [5.0, 1.0])

    def test_duplicates_kept_when_disabled(self):
        rows = np.array([0, 0])
        cols = np.array([1, 1])
        data = np.array([2.0, 3.0])
        indptr, indices, vals = kernels.coo_to_csr_arrays(
            1, 2, rows, cols, data, sum_duplicates=False)
        assert vals.size == 2

    def test_empty_input(self):
        indptr, indices, vals = kernels.coo_to_csr_arrays(
            3, 3, np.array([]), np.array([]), np.array([]))
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.size == 0 and vals.size == 0

    def test_rejects_out_of_range_rows(self):
        with pytest.raises(ValueError):
            kernels.coo_to_csr_arrays(2, 2, np.array([2]), np.array([0]),
                                      np.array([1.0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            kernels.coo_to_csr_arrays(2, 2, np.array([0]), np.array([0, 1]),
                                      np.array([1.0]))


# ----------------------------------------------------------------------
# Multiplication
# ----------------------------------------------------------------------
class TestSpMV:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy(self, seed):
        mat = random_csr(12, 9, 0.3, seed)
        x = np.random.default_rng(seed + 10).normal(size=9)
        got = kernels.csr_spmv(mat.indptr, mat.indices, mat.data, x)
        np.testing.assert_allclose(got, mat @ x, atol=1e-12)

    def test_empty_rows_give_zero(self):
        mat = sp.csr_matrix((3, 4))
        got = kernels.csr_spmv(mat.indptr, mat.indices, mat.data, np.ones(4))
        np.testing.assert_array_equal(got, np.zeros(3))

    def test_rejects_matrix_operand(self):
        mat = random_csr(3, 3, 0.5, 0)
        with pytest.raises(ValueError):
            kernels.csr_spmv(mat.indptr, mat.indices, mat.data, np.ones((3, 2)))


class TestSpMM:
    @pytest.mark.parametrize("shape,density,f", [
        ((10, 10), 0.2, 4), ((15, 7), 0.4, 1), ((6, 20), 0.1, 8),
    ])
    def test_matches_scipy(self, shape, density, f):
        mat = random_csr(shape[0], shape[1], density, 7)
        h = np.random.default_rng(11).normal(size=(shape[1], f))
        got = kernels.csr_spmm(mat.indptr, mat.indices, mat.data, h)
        np.testing.assert_allclose(got, mat @ h, atol=1e-12)

    def test_empty_matrix(self):
        mat = sp.csr_matrix((4, 5))
        got = kernels.csr_spmm(mat.indptr, mat.indices, mat.data,
                               np.ones((5, 3)))
        np.testing.assert_array_equal(got, np.zeros((4, 3)))

    def test_rejects_vector_operand(self):
        mat = random_csr(3, 3, 0.5, 0)
        with pytest.raises(ValueError):
            kernels.csr_spmm(mat.indptr, mat.indices, mat.data, np.ones(3))

    def test_rejects_short_dense_operand(self):
        mat = random_csr(4, 6, 0.5, 1)
        with pytest.raises(ValueError):
            kernels.csr_spmm(mat.indptr, mat.indices, mat.data,
                             np.ones((3, 2)))


# ----------------------------------------------------------------------
# Structural transformations
# ----------------------------------------------------------------------
class TestTranspose:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_matches_scipy(self, seed):
        mat = random_csr(9, 13, 0.25, seed)
        indptr, indices, data = kernels.csr_transpose_arrays(
            9, 13, mat.indptr, mat.indices, mat.data)
        ours = sp.csr_matrix((data, indices, indptr), shape=(13, 9)).toarray()
        np.testing.assert_allclose(ours, mat.T.toarray())

    def test_double_transpose_is_identity(self):
        mat = random_csr(8, 8, 0.3, 2)
        a = kernels.csr_transpose_arrays(8, 8, mat.indptr, mat.indices, mat.data)
        b = kernels.csr_transpose_arrays(8, 8, *a)
        ours = sp.csr_matrix((b[2], b[1], b[0]), shape=(8, 8)).toarray()
        np.testing.assert_allclose(ours, mat.toarray())


class TestRowSlice:
    def test_matches_scipy(self):
        mat = random_csr(10, 6, 0.4, 4)
        indptr, indices, data = kernels.csr_row_slice_arrays(
            mat.indptr, mat.indices, mat.data, 3, 8)
        ours = sp.csr_matrix((data, indices, indptr), shape=(5, 6)).toarray()
        np.testing.assert_allclose(ours, mat[3:8].toarray())

    def test_empty_slice(self):
        mat = random_csr(5, 5, 0.4, 4)
        indptr, indices, data = kernels.csr_row_slice_arrays(
            mat.indptr, mat.indices, mat.data, 2, 2)
        assert indptr.tolist() == [0]
        assert indices.size == 0

    def test_rejects_bad_range(self):
        mat = random_csr(5, 5, 0.4, 4)
        with pytest.raises(ValueError):
            kernels.csr_row_slice_arrays(mat.indptr, mat.indices, mat.data, 4, 6)


class TestColumnSelect:
    def test_matches_scipy(self):
        mat = random_csr(8, 10, 0.35, 9)
        columns = np.array([1, 4, 5, 9])
        indptr, indices, data = kernels.csr_column_select_arrays(
            10, mat.indptr, mat.indices, mat.data, columns)
        ours = sp.csr_matrix((data, indices, indptr), shape=(8, 4)).toarray()
        np.testing.assert_allclose(ours, mat[:, columns].toarray())

    def test_empty_selection(self):
        mat = random_csr(4, 6, 0.5, 3)
        indptr, indices, data = kernels.csr_column_select_arrays(
            6, mat.indptr, mat.indices, mat.data, np.array([], dtype=np.int64))
        assert indices.size == 0
        assert indptr.tolist() == [0, 0, 0, 0, 0]

    def test_rejects_unsorted_columns(self):
        mat = random_csr(4, 6, 0.5, 3)
        with pytest.raises(ValueError):
            kernels.csr_column_select_arrays(
                6, mat.indptr, mat.indices, mat.data, np.array([3, 1]))

    def test_rejects_out_of_range_columns(self):
        mat = random_csr(4, 6, 0.5, 3)
        with pytest.raises(ValueError):
            kernels.csr_column_select_arrays(
                6, mat.indptr, mat.indices, mat.data, np.array([6]))


class TestSymmetricPermutation:
    def test_matches_scipy(self):
        mat = random_csr(7, 7, 0.4, 6)
        perm = np.random.default_rng(1).permutation(7)
        indptr, indices, data = kernels.csr_permute_symmetric_arrays(
            mat.indptr, mat.indices, mat.data, perm)
        ours = sp.csr_matrix((data, indices, indptr), shape=(7, 7)).toarray()
        expected = np.zeros((7, 7))
        dense = mat.toarray()
        for i in range(7):
            for j in range(7):
                expected[perm[i], perm[j]] = dense[i, j]
        np.testing.assert_allclose(ours, expected)

    def test_identity_permutation(self):
        mat = random_csr(6, 6, 0.4, 8)
        out = kernels.csr_permute_symmetric_arrays(
            mat.indptr, mat.indices, mat.data, np.arange(6))
        ours = sp.csr_matrix((out[2], out[1], out[0]), shape=(6, 6)).toarray()
        np.testing.assert_allclose(ours, mat.toarray())

    def test_rejects_non_permutation(self):
        mat = random_csr(4, 4, 0.4, 8)
        with pytest.raises(ValueError):
            kernels.csr_permute_symmetric_arrays(
                mat.indptr, mat.indices, mat.data, np.array([0, 0, 1, 2]))


# ----------------------------------------------------------------------
# Element-wise / diagnostics
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_row_and_col_nnz(self):
        mat = random_csr(9, 5, 0.4, 2)
        np.testing.assert_array_equal(kernels.csr_row_nnz(mat.indptr),
                                      np.diff(mat.indptr))
        np.testing.assert_array_equal(
            kernels.csr_col_nnz(5, mat.indices),
            np.asarray((mat != 0).sum(axis=0)).ravel())

    def test_diagonal(self):
        mat = random_csr(6, 6, 0.5, 5)
        got = kernels.csr_diagonal(mat.indptr, mat.indices, mat.data, 6)
        np.testing.assert_allclose(got, mat.diagonal())

    def test_scale_rows_and_cols(self):
        mat = random_csr(5, 7, 0.5, 5)
        r = np.arange(1.0, 6.0)
        c = np.arange(1.0, 8.0)
        scaled_r = kernels.csr_scale_rows(mat.indptr, mat.data, r)
        scaled_c = kernels.csr_scale_cols(mat.indices, mat.data, c)
        np.testing.assert_allclose(
            sp.csr_matrix((scaled_r, mat.indices, mat.indptr), mat.shape).toarray(),
            sp.diags(r) @ mat.toarray())
        np.testing.assert_allclose(
            sp.csr_matrix((scaled_c, mat.indices, mat.indptr), mat.shape).toarray(),
            mat.toarray() @ sp.diags(c))

    def test_prune_zeros(self):
        indptr = np.array([0, 2, 4])
        indices = np.array([0, 1, 0, 1])
        data = np.array([1.0, 0.0, 0.0, 2.0])
        p_indptr, p_indices, p_data = kernels.csr_prune_zeros(indptr, indices, data)
        assert p_indptr.tolist() == [0, 1, 2]
        assert p_indices.tolist() == [0, 1]
        np.testing.assert_allclose(p_data, [1.0, 2.0])

    def test_sort_indices(self):
        indptr = np.array([0, 3])
        indices = np.array([2, 0, 1])
        data = np.array([3.0, 1.0, 2.0])
        _, s_idx, s_data = kernels.sort_csr_indices(indptr, indices, data)
        assert s_idx.tolist() == [0, 1, 2]
        np.testing.assert_allclose(s_data, [1.0, 2.0, 3.0])


# ----------------------------------------------------------------------
# Segment-sum reduction (the np.add.at replacement)
# ----------------------------------------------------------------------
class TestSegmentSum:
    def test_empty_rows_everywhere(self):
        # Leading, interior and trailing empty rows must all be zero.
        indptr = np.array([0, 0, 2, 2, 3, 3])
        values = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        got = kernels.segment_sum(values, indptr)
        np.testing.assert_array_equal(
            got, [[0, 0], [4, 6], [0, 0], [5, 6], [0, 0]])

    def test_empty_matrix(self):
        got = kernels.segment_sum(np.empty((0, 3)), np.zeros(5, np.int64))
        np.testing.assert_array_equal(got, np.zeros((4, 3)))

    def test_one_dimensional_values(self):
        got = kernels.segment_sum(np.array([1.0, 2.0, 4.0]),
                                  np.array([0, 1, 3]))
        np.testing.assert_array_equal(got, [1.0, 6.0])

    def test_out_buffer_is_reused_and_zeroed(self):
        out = np.full((2, 2), 7.0)
        values = np.array([[1.0, 1.0]])
        got = kernels.segment_sum(values, np.array([0, 1, 1]), out=out)
        assert got is out
        np.testing.assert_array_equal(out, [[1, 1], [0, 0]])

    def test_out_shape_validated(self):
        with pytest.raises(ValueError):
            kernels.segment_sum(np.zeros((1, 2)), np.array([0, 1]),
                                out=np.zeros((2, 2)))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            kernels.segment_sum(np.zeros((3, 1)), np.array([0, 2, 1, 3]))

    def test_rejects_inconsistent_indptr(self):
        """An indptr not spanning exactly [0, len(values)] must fail
        loudly (reduceat would silently drop leading values or fold the
        tail into the last row)."""
        with pytest.raises(ValueError, match="span"):
            kernels.segment_sum(np.zeros((4, 2)), np.array([0, 1, 2]))
        with pytest.raises(ValueError, match="span"):
            kernels.segment_sum(np.array([10.0, 1.0]), np.array([1, 2]))
        with pytest.raises(ValueError, match="span"):
            kernels.csr_spmm(np.array([0, 1, 2]), np.zeros(4, np.int64),
                             np.ones(4), np.zeros((2, 2)))

    def test_matches_scatter_add_to_rounding(self):
        """Segment sum equals the old np.add.at scatter-add up to
        floating-point rounding (the accumulation order may differ)."""
        rng = np.random.default_rng(0)
        mat = random_csr(60, 40, 0.2, seed=1)
        dense = rng.normal(size=(40, 5))
        contrib = mat.data[:, None] * dense[mat.indices]
        scatter = np.zeros((60, 5))
        np.add.at(scatter, kernels.expand_indptr(mat.indptr), contrib)
        got = kernels.csr_spmm(mat.indptr, mat.indices, mat.data, dense)
        np.testing.assert_allclose(got, scatter, rtol=1e-13, atol=1e-13)


class TestKernelDtypes:
    def test_spmm_float32(self):
        mat = random_csr(20, 16, 0.3, seed=2)
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(16, 4))
        got = kernels.csr_spmm(mat.indptr, mat.indices, mat.data, dense,
                               dtype=np.float32)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, mat @ dense, rtol=1e-5, atol=1e-5)

    def test_spmv_float32(self):
        mat = random_csr(20, 16, 0.3, seed=3)
        rng = np.random.default_rng(3)
        x = rng.normal(size=16)
        got = kernels.csr_spmv(mat.indptr, mat.indices, mat.data, x,
                               dtype=np.float32)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, mat @ x, rtol=1e-5, atol=1e-5)

    def test_spmm_out_buffer(self):
        mat = random_csr(10, 8, 0.4, seed=4)
        rng = np.random.default_rng(4)
        dense = rng.normal(size=(8, 3))
        out = np.full((10, 3), -1.0)
        got = kernels.csr_spmm(mat.indptr, mat.indices, mat.data, dense,
                               out=out)
        assert got is out
        np.testing.assert_allclose(out, (mat @ dense), atol=1e-12)

    def test_spmm_empty_with_out(self):
        out = np.full((3, 2), 5.0)
        got = kernels.csr_spmm(np.zeros(4, np.int64), np.empty(0, np.int64),
                               np.empty(0), np.zeros((7, 2)), out=out)
        assert got is out
        np.testing.assert_array_equal(out, np.zeros((3, 2)))
