"""Smoke tests for the example scripts.

Every example must at least be syntactically valid and importable as a
module with a ``main`` entry point; the quickstart is additionally executed
end to end (with its default, example-sized settings) to guarantee the
documented user journey works.
"""

import pathlib
import py_compile
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main(path):
    namespace = {}
    code = path.read_text()
    assert "def main(" in code, f"{path.name} must define main()"
    assert "__main__" in code, f"{path.name} must be runnable as a script"


def test_quickstart_runs_end_to_end(tmp_path):
    """Run the quickstart exactly as a user would."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
        cwd=str(EXAMPLES_DIR.parent))
    assert result.returncode == 0, result.stderr
    assert "epoch time" in result.stdout
    assert "test accuracy" in result.stdout


def test_partitioning_comparison_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "partitioning_comparison.py")],
        capture_output=True, text=True, timeout=600,
        cwd=str(EXAMPLES_DIR.parent))
    assert result.returncode == 0, result.stderr
    assert "partition quality" in result.stdout
