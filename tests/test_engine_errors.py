"""Error paths of the SpMM engine, config and backend plumbing.

The engine is the seam every caller goes through, so its failures must be
*clear* ``ValueError``s naming what was wrong — not index errors three
frames deep inside a kernel.  Covers: unknown variant/backend names,
mismatched operand shapes/distributions, and rank-count / process-grid
mismatches.
"""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, Dist2DSparseMatrix, DistTrainConfig,
                        Grid2D, ProcessGrid, SpmmEngine, spmm)
from repro.core.engine import (check_block_operands, check_grid_operands,
                               check_grid2d_operands, get_spmm, register_spmm)
from repro.graphs import gcn_normalize
from repro.graphs.generators import erdos_renyi_graph

N, F = 32, 5


@pytest.fixture(scope="module")
def problem():
    adj = gcn_normalize(erdos_renyi_graph(N, avg_degree=5, seed=2))
    rng = np.random.default_rng(2)
    return adj, rng.normal(size=(N, F))


def _operands_1d(adj, h, nblocks):
    dist = BlockRowDistribution.uniform(N, nblocks)
    return DistSparseMatrix(adj, dist), DistDenseMatrix.from_global(h, dist)


class TestUnknownNames:
    def test_unknown_algorithm_lists_available(self, problem):
        adj, h = problem
        matrix, dense = _operands_1d(adj, h, 4)
        comm = make_communicator(4)
        with pytest.raises(ValueError, match=r"no SpMM variant.*3d"):
            spmm(matrix, dense, comm, algorithm="3d")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="oblivious"):
            get_spmm("1d", mode="half_aware")

    def test_engine_rejects_unknown_variant(self):
        comm = make_communicator(2)
        with pytest.raises(ValueError, match="available"):
            SpmmEngine(comm, algorithm="4d")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match=r"carrier-pigeon.*sim"):
            make_communicator(4, backend="carrier-pigeon")

    def test_config_rejects_unknown_backend_and_algorithm(self):
        with pytest.raises(ValueError, match="backend"):
            DistTrainConfig(backend="mpi-someday")
        with pytest.raises(ValueError, match="algorithm"):
            DistTrainConfig(algorithm="2.5d")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_spmm("1d", "oblivious")(lambda *a, **k: None)

    def test_bad_mode_registration_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            register_spmm("9d", "telepathic")


class TestGridRequirements:
    def test_grid_algorithm_without_grid(self, problem):
        adj, h = problem
        matrix, dense = _operands_1d(adj, h, 2)
        comm = make_communicator(4)
        with pytest.raises(ValueError, match="requires a process grid"):
            spmm(matrix, dense, comm, algorithm="1.5d")
        with pytest.raises(ValueError, match="requires a process grid"):
            SpmmEngine(comm, algorithm="1.5d")

    def test_gridless_algorithm_with_grid(self, problem):
        adj, h = problem
        matrix, dense = _operands_1d(adj, h, 4)
        comm = make_communicator(4)
        grid = ProcessGrid(4, 2)
        with pytest.raises(ValueError, match="does not take a process grid"):
            spmm(matrix, dense, comm, algorithm="1d", grid=grid)
        with pytest.raises(ValueError, match="does not take a process grid"):
            SpmmEngine(comm, algorithm="1d", grid=grid)

    def test_invalid_process_grid(self):
        with pytest.raises(ValueError):
            ProcessGrid(6, 4)      # c must divide P
        with pytest.raises(ValueError):
            ProcessGrid(8, 0)


class TestOperandMismatches:
    def test_rank_count_mismatch_1d(self, problem):
        adj, h = problem
        matrix, dense = _operands_1d(adj, h, 4)
        comm = make_communicator(6)
        with pytest.raises(ValueError, match=r"4 block rows.*6 ranks"):
            check_block_operands(matrix, dense, comm)
        with pytest.raises(ValueError, match=r"block rows"):
            spmm(matrix, dense, comm, algorithm="1d")

    def test_distribution_mismatch_1d(self, problem):
        adj, h = problem
        matrix, _ = _operands_1d(adj, h, 4)
        other = BlockRowDistribution.uniform(N, 2)
        dense = DistDenseMatrix.from_global(h, other)
        comm = make_communicator(4)
        with pytest.raises(ValueError, match="different distributions"):
            check_block_operands(matrix, dense, comm)

    def test_grid_mismatches_15d(self, problem):
        adj, h = problem
        grid = ProcessGrid(4, 2)
        matrix, dense = _operands_1d(adj, h, grid.nrows)
        with pytest.raises(ValueError, match=r"communicator has 6 ranks"):
            check_grid_operands(matrix, dense, grid, make_communicator(6))
        wrong_rows, wrong_dense = _operands_1d(adj, h, 4)
        with pytest.raises(ValueError, match="block rows"):
            check_grid_operands(wrong_rows, wrong_dense, grid,
                                make_communicator(4))

    def test_grid_mismatches_2d(self, problem):
        adj, h = problem
        grid = Grid2D(2, 2)
        matrix = Dist2DSparseMatrix.uniform(adj, grid)
        with pytest.raises(ValueError, match=r"communicator has 6 ranks"):
            check_grid2d_operands(matrix, h, grid, make_communicator(6))
        with pytest.raises(ValueError, match="rows"):
            check_grid2d_operands(matrix, h[:- 1], grid, make_communicator(4))
        other_grid = Grid2D(4, 1)
        with pytest.raises(ValueError, match="does not match"):
            check_grid2d_operands(matrix, h, other_grid, make_communicator(4))

    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_mismatches_raise_before_any_transport(self, problem, backend):
        """Operand validation fires before workers move a single byte."""
        adj, h = problem
        matrix, dense = _operands_1d(adj, h, 4)
        with make_communicator(3, backend=backend) as comm:
            with pytest.raises(ValueError):
                spmm(matrix, dense, comm, algorithm="1d")
            assert comm.events.message_count() == 0
            assert comm.elapsed() == 0.0


class TestTrainerErrorPaths:
    def test_too_many_block_rows(self):
        from repro.core import train_distributed
        from repro.graphs import load_dataset
        dataset = load_dataset("reddit", scale=0.05, seed=0)
        config = DistTrainConfig(n_ranks=10 * dataset.n_vertices, epochs=1,
                                 partitioner=None)
        with pytest.raises(ValueError, match="cannot distribute"):
            train_distributed(dataset, config)

    def test_setup_failure_closes_communicator(self, monkeypatch):
        """A failure after the communicator exists must not leak workers."""
        import repro.core.trainer as trainer_mod
        from repro.graphs import load_dataset
        closed = []

        real_make = trainer_mod.make_communicator

        def tracking_make(*args, **kwargs):
            comm = real_make(*args, **kwargs)
            original_close = comm.close

            def close():
                closed.append(True)
                original_close()

            comm.close = close
            return comm

        monkeypatch.setattr(trainer_mod, "make_communicator", tracking_make)
        monkeypatch.setattr(trainer_mod, "DistributedGCN",
                            lambda *a, **k: (_ for _ in ()).throw(
                                ValueError("model construction failed")))
        dataset = load_dataset("reddit", scale=0.05, seed=0)
        with pytest.raises(ValueError, match="model construction failed"):
            trainer_mod.setup_distributed(
                dataset, DistTrainConfig(n_ranks=2, epochs=1,
                                         partitioner=None))
        assert closed, "setup_distributed must close the communicator"
