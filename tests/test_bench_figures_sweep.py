"""Tests for the figure rendering, CSV persistence and sweep utilities."""

import csv
import math
import os

import numpy as np
import pytest

from repro.bench import (ascii_bar_chart, ascii_line_plot, feature_width_sweep,
                         grid_points, partitioner_sweep, replication_sweep,
                         run_grid, save_results, write_csv)


SAMPLE_ROWS = [
    {"scheme": "CAGNET", "p": 4, "epoch_time_s": 0.4},
    {"scheme": "CAGNET", "p": 16, "epoch_time_s": 0.5},
    {"scheme": "SA", "p": 4, "epoch_time_s": 0.35},
    {"scheme": "SA", "p": 16, "epoch_time_s": 0.2},
    {"scheme": "SA", "p": 64, "epoch_time_s": float("nan")},   # OOM point
]


# ----------------------------------------------------------------------
# ASCII figures
# ----------------------------------------------------------------------
class TestAsciiLinePlot:
    def test_contains_every_scheme_and_legend(self):
        out = ascii_line_plot(SAMPLE_ROWS, "scheme", "p", "epoch_time_s",
                              title="fig3")
        assert "fig3" in out
        assert "o = CAGNET" in out and "x = SA" in out
        # Marker characters appear in the grid body.
        body = out.splitlines()[1:-3]
        assert any("o" in line for line in body)
        assert any("x" in line for line in body)

    def test_skips_non_finite_points(self):
        out = ascii_line_plot(SAMPLE_ROWS, "scheme", "p", "epoch_time_s")
        # Only 4 finite points; nothing blows up and the output is bounded.
        assert len(out.splitlines()) < 30

    def test_no_data(self):
        out = ascii_line_plot([{"scheme": "A", "p": float("nan"),
                                "epoch_time_s": 1.0}],
                              "scheme", "p", "epoch_time_s", title="empty")
        assert "no finite data" in out

    def test_linear_axes(self):
        out = ascii_line_plot(SAMPLE_ROWS, "scheme", "p", "epoch_time_s",
                              log_x=False, log_y=False)
        assert "epoch_time_s vs p" in out

    def test_single_point_degenerate_span(self):
        out = ascii_line_plot([{"scheme": "A", "p": 4, "epoch_time_s": 1.0}],
                              "scheme", "p", "epoch_time_s")
        assert "A" in out

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot(SAMPLE_ROWS, "scheme", "p", "epoch_time_s", width=4)


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        out = ascii_bar_chart({"bcast": 4.0, "local": 1.0}, width=40)
        lines = out.splitlines()
        bcast = next(l for l in lines if "bcast" in l)
        local = next(l for l in lines if "local" in l)
        assert bcast.count("#") > local.count("#")

    def test_empty_and_title(self):
        out = ascii_bar_chart({}, title="breakdown")
        assert "breakdown" in out and "no data" in out

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 1.0}, width=2)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
class TestPersistence:
    def test_write_csv_round_trip(self, tmp_path):
        path = write_csv(SAMPLE_ROWS, str(tmp_path / "out" / "fig3.csv"))
        assert os.path.exists(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(SAMPLE_ROWS)
        assert rows[0]["scheme"] == "CAGNET"

    def test_write_csv_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = write_csv(rows, str(tmp_path / "x.csv"))
        with open(path) as handle:
            reader = csv.DictReader(handle)
            assert set(reader.fieldnames) == {"a", "b"}

    def test_save_results_writes_csv_and_text(self, tmp_path):
        paths = save_results(SAMPLE_ROWS, str(tmp_path / "results"), "fig3",
                             text="hello table")
        assert os.path.exists(paths["csv"])
        assert os.path.exists(paths["txt"])
        assert "hello table" in open(paths["txt"]).read()

    def test_save_results_csv_only(self, tmp_path):
        paths = save_results(SAMPLE_ROWS, str(tmp_path), "fig3")
        assert "txt" not in paths


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
class TestGrid:
    def test_grid_points_cartesian_product(self):
        points = grid_points({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(points) == 6
        assert {"a": 2, "b": "z"} in points

    def test_empty_grid(self):
        assert grid_points({}) == [{}]

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            grid_points({"a": []})

    def test_run_grid_collects_and_skips(self):
        def fn(x):
            if x == 2:
                raise ValueError("infeasible")
            return {"x": x, "y": x * x}

        rows = run_grid(fn, {"x": [1, 2, 3]})
        assert len(rows) == 3
        assert rows[0]["y"] == 1
        assert "skipped" in rows[1]
        assert rows[2]["y"] == 9

    def test_run_grid_raises_when_asked(self):
        def fn(x):
            raise ValueError("boom")
        with pytest.raises(ValueError):
            run_grid(fn, {"x": [1]}, skip_errors=False)


class TestConcreteSweeps:
    """Small-scale smoke runs of the ablation sweeps (tiny graphs)."""

    def test_feature_width_sweep_shows_widening_gap(self):
        rows = feature_width_sweep(dataset_name="amazon", widths=(8, 64),
                                   p=8, scale=0.05, epochs=1, seed=0)
        assert len(rows) == 4
        by_key = {(r["f"], r["scheme"]): r["epoch_time_s"] for r in rows
                  if "epoch_time_s" in r}
        # The sparsity-aware advantage at the wide setting is at least as
        # large as at the narrow setting (both measured as CAGNET / SA+GVB).
        narrow = by_key[(8, "CAGNET")] / by_key[(8, "SA+GVB")]
        wide = by_key[(64, "CAGNET")] / by_key[(64, "SA+GVB")]
        assert wide >= narrow * 0.8   # allow latency noise at tiny scale

    def test_replication_sweep_rows(self):
        rows = replication_sweep(dataset_name="protein", p=16,
                                 replication_factors=(1, 2), scale=0.05,
                                 epochs=1, seed=0)
        assert len(rows) == 4
        assert all("replication" in r or "skipped" in r for r in rows)

    def test_partitioner_sweep_includes_new_partitioners(self):
        rows = partitioner_sweep(dataset_name="reddit",
                                 partitioners=("block", "gvb", "hypergraph"),
                                 p=4, scale=0.05, epochs=1, seed=0)
        assert {r["partitioner"] for r in rows} == {"block", "gvb", "hypergraph"}
        for row in rows:
            assert math.isfinite(row["epoch_time_s"])
