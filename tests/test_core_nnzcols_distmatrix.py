"""Tests for NnzCols analysis and the distributed matrix containers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        nnz_columns_per_block, split_block_row)
from repro.graphs import gcn_normalize
from repro.graphs.generators import erdos_renyi_graph


@pytest.fixture(scope="module")
def matrix():
    return gcn_normalize(erdos_renyi_graph(48, avg_degree=5, seed=0))


class TestBlockRowDistribution:
    def test_uniform_sizes(self):
        dist = BlockRowDistribution.uniform(10, 3)
        assert dist.block_sizes.tolist() == [4, 3, 3]
        assert dist.bounds.tolist() == [0, 4, 7, 10]
        assert dist.n == 10 and dist.nblocks == 3

    def test_from_partition_sizes(self):
        dist = BlockRowDistribution.from_partition([2, 5, 3])
        assert dist.block_range(1) == (2, 7)
        assert dist.block_size(2) == 3

    def test_owner_of(self):
        dist = BlockRowDistribution([3, 3, 4])
        assert dist.owner_of(0) == 0
        assert dist.owner_of(2) == 0
        assert dist.owner_of(3) == 1
        assert dist.owner_of(9) == 2
        with pytest.raises(ValueError):
            dist.owner_of(10)

    def test_equality(self):
        assert BlockRowDistribution([2, 2]) == BlockRowDistribution([2, 2])
        assert BlockRowDistribution([2, 2]) != BlockRowDistribution([1, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockRowDistribution([])
        with pytest.raises(ValueError):
            BlockRowDistribution([3, -1])
        with pytest.raises(ValueError):
            BlockRowDistribution.uniform(5, 3).block_range(3)


class TestSplitBlockRow:
    def test_nnz_cols_identify_needed_rows(self):
        # Handcrafted 2x6 block row with nonzeros in columns 0, 3, 5.
        block = sp.csr_matrix(np.array([[1.0, 0, 0, 2.0, 0, 0],
                                        [0, 0, 0, 0, 0, 3.0]]))
        infos = split_block_row(block, [0, 2, 4, 6])
        assert infos[0].nnz_cols_global.tolist() == [0]
        assert infos[1].nnz_cols_global.tolist() == [3]
        assert infos[2].nnz_cols_global.tolist() == [5]
        assert infos[1].nnz_cols_local.tolist() == [1]
        assert infos[2].nnz_cols_local.tolist() == [1]

    def test_compact_times_packed_equals_full_times_block(self, matrix):
        dist = BlockRowDistribution.uniform(48, 4)
        rng = np.random.default_rng(0)
        h = rng.normal(size=(48, 5))
        lo, hi = dist.block_range(1)
        infos = split_block_row(matrix[lo:hi, :], dist.bounds)
        for j, info in enumerate(infos):
            jlo, jhi = dist.block_range(j)
            h_j = h[jlo:jhi]
            full_result = info.full @ h_j
            compact_result = info.compact @ h_j[info.nnz_cols_local]
            np.testing.assert_allclose(full_result, compact_result, atol=1e-12)

    def test_needed_rows_counts(self, matrix):
        dist = BlockRowDistribution.uniform(48, 4)
        lo, hi = dist.block_range(0)
        infos = split_block_row(matrix[lo:hi, :], dist.bounds)
        for info in infos:
            assert info.n_needed_rows == info.nnz_cols_global.size
            assert info.nnz == info.compact.nnz == info.full.nnz

    def test_bounds_validation(self, matrix):
        block = matrix[:10, :]
        with pytest.raises(ValueError):
            split_block_row(block, [0, 10])       # does not end at n
        with pytest.raises(ValueError):
            split_block_row(block, [5, 48])       # does not start at 0
        with pytest.raises(ValueError):
            split_block_row(block, [0, 30, 20, 48])  # decreasing

    def test_nnz_columns_per_block_helper(self, matrix):
        dist = BlockRowDistribution.uniform(48, 3)
        lo, hi = dist.block_range(2)
        cols = nnz_columns_per_block(matrix[lo:hi, :], dist.bounds)
        infos = split_block_row(matrix[lo:hi, :], dist.bounds)
        for c, info in zip(cols, infos):
            np.testing.assert_array_equal(c, info.nnz_cols_local)


class TestDistSparseMatrix:
    def test_construction_and_reassembly(self, matrix):
        dist = BlockRowDistribution.uniform(48, 4)
        dm = DistSparseMatrix(matrix, dist)
        assert dm.nblocks == 4
        assert dm.nnz == matrix.nnz
        np.testing.assert_allclose(dm.to_dense_global(), matrix.toarray(),
                                   atol=1e-12)

    def test_block_access(self, matrix):
        dist = BlockRowDistribution.uniform(48, 4)
        dm = DistSparseMatrix(matrix, dist)
        info = dm.block(1, 2)
        assert info.block == 2
        np.testing.assert_array_equal(dm.nnz_cols(1, 2), info.nnz_cols_local)

    def test_needed_rows_matrix_zero_diagonal(self, matrix):
        dm = DistSparseMatrix(matrix, BlockRowDistribution.uniform(48, 4))
        needed = dm.needed_rows_matrix()
        assert needed.shape == (4, 4)
        assert np.all(np.diag(needed) == 0)
        # Each off-diagonal count is bounded by the destination block size.
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert needed[i, j] <= dm.dist.block_size(j)

    def test_shape_validation(self, matrix):
        with pytest.raises(ValueError):
            DistSparseMatrix(matrix[:10, :], BlockRowDistribution.uniform(10, 2))
        with pytest.raises(ValueError):
            DistSparseMatrix(matrix, BlockRowDistribution.uniform(40, 4))


class TestDistDenseMatrix:
    def test_from_global_roundtrip(self):
        dist = BlockRowDistribution([3, 4, 5])
        mat = np.arange(12 * 2, dtype=np.float64).reshape(12, 2)
        dm = DistDenseMatrix.from_global(mat, dist)
        assert dm.width == 2
        np.testing.assert_array_equal(dm.to_global(), mat)
        np.testing.assert_array_equal(dm.block(1), mat[3:7])

    def test_block_shape_validation(self):
        dist = BlockRowDistribution([2, 2])
        with pytest.raises(ValueError):
            DistDenseMatrix([np.zeros((2, 3)), np.zeros((1, 3))], dist)
        with pytest.raises(ValueError):
            DistDenseMatrix([np.zeros((2, 3)), np.zeros((2, 4))], dist)
        with pytest.raises(ValueError):
            DistDenseMatrix([np.zeros((2, 3))], dist)
        with pytest.raises(ValueError):
            DistDenseMatrix.from_global(np.zeros((5, 2)), dist)

    def test_like_builds_over_same_distribution(self):
        dist = BlockRowDistribution([2, 3])
        dm = DistDenseMatrix.from_global(np.ones((5, 2)), dist)
        other = dm.like([np.zeros((2, 4)), np.zeros((3, 4))])
        assert other.dist == dist
        assert other.width == 4
