"""Property-based tests (hypothesis) for the from-scratch sparse kernels.

The central invariants:

* every CSRMatrix operation agrees with the scipy.sparse reference on
  arbitrary random matrices;
* COO -> CSR -> COO round trips preserve the represented matrix;
* column compaction followed by packed multiplication equals the full
  multiplication (the identity sparsity-aware SpMM relies on);
* the BlockedCSR volume accounting is consistent for arbitrary block
  boundaries.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sparse import BlockedCSR, COOMatrix, CSRMatrix, gcn_normalize
from repro.graphs.adjacency import gcn_normalize as gcn_normalize_scipy

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def random_sparse(draw, max_rows=30, max_cols=30, square=False):
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    n_cols = n_rows if square else draw(st.integers(min_value=1,
                                                    max_value=max_cols))
    density = draw(st.floats(min_value=0.0, max_value=0.4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = sp.random(n_rows, n_cols, density=density, random_state=rng,
                    format="csr")
    mat.sort_indices()
    return mat


@st.composite
def symmetric_graph(draw, max_n=30):
    mat = draw(random_sparse(max_rows=max_n, square=True))
    mat = mat + mat.T
    mat.setdiag(0)
    mat.eliminate_zeros()
    mat.sort_indices()
    return mat.tocsr()


# ----------------------------------------------------------------------
# CSRMatrix vs scipy
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(random_sparse(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10_000))
def test_spmm_matches_scipy(mat, f, seed):
    ours = CSRMatrix.from_scipy(mat)
    h = np.random.default_rng(seed).normal(size=(mat.shape[1], f))
    np.testing.assert_allclose(ours.spmm(h), mat @ h, atol=1e-10)


@settings(**SETTINGS)
@given(random_sparse())
def test_transpose_matches_scipy(mat):
    ours = CSRMatrix.from_scipy(mat)
    np.testing.assert_allclose(ours.T.to_dense(), mat.T.toarray(), atol=1e-12)


@settings(**SETTINGS)
@given(random_sparse(), st.integers(min_value=0, max_value=10_000))
def test_row_slice_matches_scipy(mat, seed):
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, mat.shape[0] + 1))
    stop = int(rng.integers(start, mat.shape[0] + 1))
    ours = CSRMatrix.from_scipy(mat).row_slice(start, stop)
    np.testing.assert_allclose(ours.to_dense(), mat[start:stop].toarray(),
                               atol=1e-12)


@settings(**SETTINGS)
@given(random_sparse())
def test_compact_columns_identity(mat):
    """compact(A) @ H[kept] == A @ H for any H."""
    ours = CSRMatrix.from_scipy(mat)
    compact, kept = ours.compact_columns()
    h = np.random.default_rng(0).normal(size=(mat.shape[1], 3))
    np.testing.assert_allclose(compact.spmm(h[kept]), mat @ h, atol=1e-10)
    # Every kept column really has a nonzero; dropped columns are empty.
    col_nnz = np.asarray((mat != 0).sum(axis=0)).ravel()
    np.testing.assert_array_equal(kept, np.flatnonzero(col_nnz > 0))


@settings(**SETTINGS)
@given(symmetric_graph(), st.integers(min_value=0, max_value=10_000))
def test_symmetric_permutation_preserves_spectrum_and_structure(mat, seed):
    n = mat.shape[0]
    perm = np.random.default_rng(seed).permutation(n)
    ours = CSRMatrix.from_scipy(mat).permute_symmetric(perm)
    assert ours.nnz == mat.nnz
    # Permuting back recovers the original.
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)
    np.testing.assert_allclose(ours.permute_symmetric(inverse).to_dense(),
                               mat.toarray(), atol=1e-12)


# ----------------------------------------------------------------------
# COO round trips
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(random_sparse())
def test_coo_csr_round_trip(mat):
    coo = COOMatrix.from_scipy(mat)
    back = coo.to_csr().to_coo().to_csr()
    np.testing.assert_allclose(back.to_dense(), mat.toarray(), atol=1e-12)


@settings(**SETTINGS)
@given(symmetric_graph())
def test_symmetrize_idempotent(mat):
    coo = COOMatrix.from_scipy(mat)
    once = coo.symmetrize()
    twice = once.symmetrize()
    np.testing.assert_allclose(once.to_dense(), twice.to_dense(), atol=1e-12)


# ----------------------------------------------------------------------
# GCN normalisation equivalence
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(symmetric_graph())
def test_gcn_normalize_matches_scipy_implementation(mat):
    ours = gcn_normalize(CSRMatrix.from_scipy(mat))
    ref = gcn_normalize_scipy(mat)
    np.testing.assert_allclose(ours.to_dense(), ref.toarray(), atol=1e-10)


# ----------------------------------------------------------------------
# BlockedCSR invariants
# ----------------------------------------------------------------------
@st.composite
def graph_with_bounds(draw):
    mat = draw(symmetric_graph())
    n = mat.shape[0]
    nblocks = draw(st.integers(min_value=1, max_value=min(5, n)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    if nblocks > 1 and n > 1:
        cuts = np.sort(rng.choice(np.arange(1, n), size=min(nblocks - 1, n - 1),
                                  replace=False))
    else:
        cuts = np.array([], dtype=np.int64)
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    return mat, bounds


@settings(**SETTINGS)
@given(graph_with_bounds(), st.integers(min_value=1, max_value=4))
def test_blocked_spmm_exact_for_arbitrary_bounds(args, f):
    mat, bounds = args
    blocked = BlockedCSR(CSRMatrix.from_scipy(mat), bounds)
    h = np.random.default_rng(1).normal(size=(mat.shape[0], f))
    np.testing.assert_allclose(blocked.spmm(h, use_compact=True), mat @ h,
                               atol=1e-10)
    np.testing.assert_allclose(blocked.spmm(h, use_compact=False), mat @ h,
                               atol=1e-10)


@settings(**SETTINGS)
@given(graph_with_bounds())
def test_blocked_volume_never_exceeds_oblivious(args):
    mat, bounds = args
    blocked = BlockedCSR(CSRMatrix.from_scipy(mat), bounds)
    needed = blocked.needed_rows_matrix()
    oblivious = blocked.oblivious_rows_matrix()
    assert np.all(needed <= oblivious)
    assert np.all(needed >= 0)
    # Diagonal never counts as communication.
    assert np.all(np.diag(needed) == 0)


# ----------------------------------------------------------------------
# Segment-sum kernels (np.add.reduceat formulation of the scatter-add)
# ----------------------------------------------------------------------
@given(mat=random_sparse(), seed=st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_segment_sum_spmm_matches_scipy(mat, seed):
    """csr_spmm's segment-sum reduction equals scipy for arbitrary
    sparsity patterns, including empty rows and empty matrices."""
    from repro.sparse import kernels
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(mat.shape[1], 3))
    got = kernels.csr_spmm(mat.indptr, mat.indices, mat.data, dense)
    np.testing.assert_allclose(got, mat @ dense, atol=1e-12)


@given(mat=random_sparse(), seed=st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_segment_sum_spmv_matches_scipy(mat, seed):
    from repro.sparse import kernels
    rng = np.random.default_rng(seed)
    x = rng.normal(size=mat.shape[1])
    got = kernels.csr_spmv(mat.indptr, mat.indices, mat.data, x)
    np.testing.assert_allclose(got, mat @ x, atol=1e-12)


@given(n_rows=st.integers(1, 12), n_cols=st.integers(1, 12),
       nnz=st.integers(0, 60), seed=st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_coo_duplicate_folding_matches_scipy(n_rows, n_cols, nnz, seed):
    """Duplicate (row, col) entries — the reduceat group-fold path — sum
    exactly like scipy's COO->CSR conversion."""
    from repro.sparse import kernels
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, size=nnz)
    cols = rng.integers(0, n_cols, size=nnz)
    data = rng.normal(size=nnz)
    indptr, indices, vals = kernels.coo_to_csr_arrays(
        n_rows, n_cols, rows, cols, data)
    ours = sp.csr_matrix((vals, indices, indptr),
                         shape=(n_rows, n_cols)).toarray()
    ref = sp.coo_matrix((data, (rows, cols)),
                        shape=(n_rows, n_cols)).toarray()
    np.testing.assert_allclose(ours, ref, atol=1e-12)


@given(sizes=st.lists(st.integers(0, 5), min_size=1, max_size=20),
       width=st.integers(1, 4), seed=st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_segment_sum_arbitrary_segments(sizes, width, seed):
    """segment_sum over arbitrary (including empty and trailing-empty)
    segments equals the per-segment numpy sum."""
    from repro.sparse.kernels import segment_sum
    rng = np.random.default_rng(seed)
    indptr = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    values = rng.normal(size=(int(indptr[-1]), width))
    got = segment_sum(values, indptr)
    for i, size in enumerate(sizes):
        expected = values[indptr[i]:indptr[i + 1]].sum(axis=0) if size \
            else np.zeros(width)
        np.testing.assert_allclose(got[i], expected, atol=1e-12)
