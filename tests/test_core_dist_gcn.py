"""Tests for the distributed GCN model (forward/backward/step mechanics)."""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (Algorithm, BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, DistributedGCN, ProcessGrid)
from repro.gcn import GCNModel
from repro.graphs import gcn_normalize, load_dataset


@pytest.fixture(scope="module")
def problem():
    ds = load_dataset("reddit", scale=0.05, n_features=10, n_classes=4, seed=2)
    matrix = gcn_normalize(ds.adjacency)
    return ds, matrix


def build_model(ds, matrix, p=4, algorithm=Algorithm.ONE_D, c=1,
                sparsity_aware=True, seed=0):
    nblocks = p // c if algorithm == Algorithm.ONE_POINT_FIVE_D else p
    dist = BlockRowDistribution.uniform(matrix.shape[0], nblocks)
    comm = make_communicator(p)
    grid = ProcessGrid(p, c) if algorithm == Algorithm.ONE_POINT_FIVE_D else None
    model = DistributedGCN(
        adjacency_dist=DistSparseMatrix(matrix, dist),
        features_dist=DistDenseMatrix.from_global(
            ds.node_data.features.astype(np.float64), dist),
        labels=ds.node_data.labels,
        train_mask=ds.node_data.train_mask,
        layer_dims=[ds.node_data.n_features, 8, ds.node_data.n_classes],
        comm=comm,
        algorithm=algorithm,
        sparsity_aware=sparsity_aware,
        grid=grid,
        seed=seed,
    )
    return model, comm


class TestConstruction:
    def test_requires_grid_for_15d(self, problem):
        ds, matrix = problem
        dist = BlockRowDistribution.uniform(matrix.shape[0], 2)
        with pytest.raises(ValueError):
            DistributedGCN(
                adjacency_dist=DistSparseMatrix(matrix, dist),
                features_dist=DistDenseMatrix.from_global(
                    ds.node_data.features.astype(np.float64), dist),
                labels=ds.node_data.labels,
                train_mask=ds.node_data.train_mask,
                layer_dims=[ds.node_data.n_features, 8, ds.node_data.n_classes],
                comm=make_communicator(4),
                algorithm=Algorithm.ONE_POINT_FIVE_D,
                grid=None,
            )

    def test_rejects_block_rank_mismatch_for_1d(self, problem):
        ds, matrix = problem
        dist = BlockRowDistribution.uniform(matrix.shape[0], 2)
        with pytest.raises(ValueError):
            DistributedGCN(
                adjacency_dist=DistSparseMatrix(matrix, dist),
                features_dist=DistDenseMatrix.from_global(
                    ds.node_data.features.astype(np.float64), dist),
                labels=ds.node_data.labels,
                train_mask=ds.node_data.train_mask,
                layer_dims=[ds.node_data.n_features, 8, ds.node_data.n_classes],
                comm=make_communicator(4),   # 4 ranks but only 2 block rows
                algorithm=Algorithm.ONE_D,
            )

    def test_rejects_feature_width_mismatch(self, problem):
        ds, matrix = problem
        dist = BlockRowDistribution.uniform(matrix.shape[0], 2)
        with pytest.raises(ValueError):
            DistributedGCN(
                adjacency_dist=DistSparseMatrix(matrix, dist),
                features_dist=DistDenseMatrix.from_global(
                    ds.node_data.features.astype(np.float64), dist),
                labels=ds.node_data.labels,
                train_mask=ds.node_data.train_mask,
                layer_dims=[999, 8, ds.node_data.n_classes],
                comm=make_communicator(2),
            )

    def test_rejects_empty_train_mask(self, problem):
        ds, matrix = problem
        dist = BlockRowDistribution.uniform(matrix.shape[0], 2)
        with pytest.raises(ValueError):
            DistributedGCN(
                adjacency_dist=DistSparseMatrix(matrix, dist),
                features_dist=DistDenseMatrix.from_global(
                    ds.node_data.features.astype(np.float64), dist),
                labels=ds.node_data.labels,
                train_mask=np.zeros(matrix.shape[0], dtype=bool),
                layer_dims=[ds.node_data.n_features, 8, ds.node_data.n_classes],
                comm=make_communicator(2),
            )

    def test_unknown_algorithm(self, problem):
        ds, matrix = problem
        dist = BlockRowDistribution.uniform(matrix.shape[0], 2)
        with pytest.raises(ValueError):
            DistributedGCN(
                adjacency_dist=DistSparseMatrix(matrix, dist),
                features_dist=DistDenseMatrix.from_global(
                    ds.node_data.features.astype(np.float64), dist),
                labels=ds.node_data.labels,
                train_mask=ds.node_data.train_mask,
                layer_dims=[ds.node_data.n_features, 8, ds.node_data.n_classes],
                comm=make_communicator(2),
                algorithm="3d",
            )


class TestForwardBackward:
    def test_forward_matches_reference(self, problem):
        ds, matrix = problem
        dist_model, _ = build_model(ds, matrix, p=4)
        ref = GCNModel([ds.node_data.n_features, 8, ds.node_data.n_classes],
                       seed=0)
        ref_state = ref.forward(matrix, ds.node_data.features.astype(np.float64))
        caches = dist_model.forward()
        np.testing.assert_allclose(caches[-1].h_out.to_global(),
                                   ref_state.logits, atol=1e-9)

    def test_loss_matches_reference(self, problem):
        ds, matrix = problem
        dist_model, _ = build_model(ds, matrix, p=4)
        ref = GCNModel([ds.node_data.n_features, 8, ds.node_data.n_classes],
                       seed=0)
        feats = ds.node_data.features.astype(np.float64)
        ref_state = ref.forward(matrix, feats)
        ref_loss, _ = ref.loss_and_logits_grad(
            ref_state.logits, ds.node_data.labels, ds.node_data.train_mask)
        caches = dist_model.forward()
        dist_loss, _ = dist_model.loss_and_logits_grad(caches[-1].h_out)
        assert dist_loss == pytest.approx(ref_loss, rel=1e-9)

    def test_weight_gradients_match_reference(self, problem):
        ds, matrix = problem
        dist_model, _ = build_model(ds, matrix, p=4)
        ref = GCNModel([ds.node_data.n_features, 8, ds.node_data.n_classes],
                       seed=0)
        feats = ds.node_data.features.astype(np.float64)
        ref_state = ref.forward(matrix, feats)
        _, ref_grad_logits = ref.loss_and_logits_grad(
            ref_state.logits, ds.node_data.labels, ds.node_data.train_mask)
        ref_grads = ref.backward(matrix, ref_state, ref_grad_logits)

        caches = dist_model.forward()
        _, grad_logits = dist_model.loss_and_logits_grad(caches[-1].h_out)
        dist_grads = dist_model.backward(caches, grad_logits)
        for ref_g, dist_g in zip(ref_grads, dist_grads):
            np.testing.assert_allclose(dist_g, ref_g, atol=1e-9)

    def test_train_epoch_updates_weights_and_returns_loss(self, problem):
        ds, matrix = problem
        dist_model, _ = build_model(ds, matrix, p=4)
        before = [w.copy() for w in dist_model.weights]
        loss = dist_model.train_epoch(lr=0.1)
        assert np.isfinite(loss)
        assert any(not np.allclose(b, w)
                   for b, w in zip(before, dist_model.weights))

    def test_apply_gradients_validation(self, problem):
        ds, matrix = problem
        dist_model, _ = build_model(ds, matrix, p=4)
        with pytest.raises(ValueError):
            dist_model.apply_gradients([np.zeros((2, 2))], lr=0.1)

    def test_predictions_shape_and_range(self, problem):
        ds, matrix = problem
        dist_model, _ = build_model(ds, matrix, p=4)
        preds = dist_model.predictions()
        assert preds.shape == (ds.n_vertices,)
        assert preds.min() >= 0 and preds.max() < ds.node_data.n_classes


class TestTimingSideEffects:
    def test_epoch_advances_simulated_time(self, problem):
        ds, matrix = problem
        dist_model, comm = build_model(ds, matrix, p=4)
        dist_model.train_epoch(lr=0.05)
        assert comm.timeline.elapsed() > 0
        breakdown = comm.timeline.breakdown()
        assert "alltoall" in breakdown
        assert "allreduce" in breakdown
        assert "local" in breakdown

    def test_oblivious_uses_bcast_category(self, problem):
        ds, matrix = problem
        dist_model, comm = build_model(ds, matrix, p=4, sparsity_aware=False)
        dist_model.train_epoch(lr=0.05)
        breakdown = comm.timeline.breakdown()
        assert breakdown.get("bcast", 0) > 0
        assert breakdown.get("alltoall", 0) == 0

    def test_predictions_do_not_advance_clock(self, problem):
        ds, matrix = problem
        dist_model, comm = build_model(ds, matrix, p=4)
        before = comm.timeline.elapsed()
        dist_model.predictions()
        assert comm.timeline.elapsed() == before

    def test_15d_charges_every_replica(self, problem):
        ds, matrix = problem
        dist_model, comm = build_model(ds, matrix, p=4,
                                       algorithm=Algorithm.ONE_POINT_FIVE_D,
                                       c=2)
        dist_model.train_epoch(lr=0.05)
        local = comm.timeline.per_rank_breakdown()["local"]
        assert np.all(local > 0)
