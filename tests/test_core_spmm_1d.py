"""Tests for the 1D distributed SpMM algorithms (sparsity-oblivious and
sparsity-aware)."""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        spmm_1d_oblivious, spmm_1d_sparsity_aware)
from repro.graphs import gcn_normalize
from repro.graphs.generators import community_ring_graph, erdos_renyi_graph


def make_problem(n=60, p=4, f=7, seed=0, generator=erdos_renyi_graph,
                 **kwargs):
    adj = gcn_normalize(generator(n, avg_degree=6, seed=seed, **kwargs))
    dist = BlockRowDistribution.uniform(n, p)
    rng = np.random.default_rng(seed)
    h = rng.normal(size=(n, f))
    return (adj, DistSparseMatrix(adj, dist),
            DistDenseMatrix.from_global(h, dist), h)


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_oblivious_matches_serial(self, p):
        adj, dm, dh, h = make_problem(p=p)
        comm = make_communicator(p)
        result = spmm_1d_oblivious(dm, dh, comm)
        np.testing.assert_allclose(result.to_global(), adj @ h, atol=1e-10)

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_sparsity_aware_matches_serial(self, p):
        adj, dm, dh, h = make_problem(p=p)
        comm = make_communicator(p)
        result = spmm_1d_sparsity_aware(dm, dh, comm)
        np.testing.assert_allclose(result.to_global(), adj @ h, atol=1e-10)

    def test_both_algorithms_agree(self):
        adj, dm, dh, h = make_problem(p=5, seed=3)
        a = spmm_1d_oblivious(dm, dh, make_communicator(5))
        b = spmm_1d_sparsity_aware(dm, dh, make_communicator(5))
        np.testing.assert_allclose(a.to_global(), b.to_global(), atol=1e-10)

    def test_variable_block_sizes(self):
        n, f = 50, 4
        adj = gcn_normalize(erdos_renyi_graph(n, avg_degree=5, seed=1))
        dist = BlockRowDistribution([5, 20, 10, 15])
        rng = np.random.default_rng(0)
        h = rng.normal(size=(n, f))
        dm = DistSparseMatrix(adj, dist)
        dh = DistDenseMatrix.from_global(h, dist)
        result = spmm_1d_sparsity_aware(dm, dh, make_communicator(4))
        np.testing.assert_allclose(result.to_global(), adj @ h, atol=1e-10)

    def test_mismatched_communicator_rejected(self):
        adj, dm, dh, _ = make_problem(p=4)
        with pytest.raises(ValueError):
            spmm_1d_sparsity_aware(dm, dh, make_communicator(3))

    def test_mismatched_distribution_rejected(self):
        adj, dm, _, h = make_problem(p=4)
        other = DistDenseMatrix.from_global(h, BlockRowDistribution.uniform(60, 3))
        with pytest.raises(ValueError):
            spmm_1d_oblivious(dm, other, make_communicator(4))


class TestCommunicationVolume:
    def test_sparsity_aware_sends_no_more_than_oblivious(self):
        adj, dm, dh, _ = make_problem(n=80, p=5, seed=2)
        comm_ob = make_communicator(5)
        comm_sa = make_communicator(5)
        spmm_1d_oblivious(dm, dh, comm_ob)
        spmm_1d_sparsity_aware(dm, dh, comm_sa)
        assert comm_sa.stats.total_bytes() <= comm_ob.stats.total_bytes()

    def test_sparsity_aware_volume_matches_nnzcols_prediction(self):
        adj, dm, dh, _ = make_problem(n=80, p=5, seed=4)
        comm = make_communicator(5)
        spmm_1d_sparsity_aware(dm, dh, comm)
        f = dh.width
        predicted = dm.needed_rows_matrix().sum() * f * 8
        assert comm.stats.total_bytes("alltoall") == predicted

    def test_oblivious_volume_is_full_blocks(self):
        adj, dm, dh, _ = make_problem(n=80, p=4, seed=5)
        comm = make_communicator(4)
        spmm_1d_oblivious(dm, dh, comm)
        f = dh.width
        n = 80
        expected = sum(dm.dist.block_size(j) * f * 8 * 3 for j in range(4))
        assert comm.stats.total_bytes("bcast") == expected

    def test_block_diagonal_graph_is_communication_free(self):
        """If the graph has no edges across blocks, the sparsity-aware
        algorithm must send nothing at all — the 'communication-free'
        extreme the paper reaches on Protein."""
        import scipy.sparse as sp
        blocks = [gcn_normalize(erdos_renyi_graph(20, avg_degree=4, seed=s))
                  for s in range(3)]
        adj = sp.block_diag(blocks, format="csr")
        dist = BlockRowDistribution.uniform(60, 3)
        rng = np.random.default_rng(0)
        h = rng.normal(size=(60, 5))
        dm = DistSparseMatrix(adj, dist)
        dh = DistDenseMatrix.from_global(h, dist)
        comm = make_communicator(3)
        result = spmm_1d_sparsity_aware(dm, dh, comm)
        np.testing.assert_allclose(result.to_global(), adj @ h, atol=1e-12)
        assert comm.stats.total_bytes("alltoall") == 0
        # The oblivious algorithm still pays the full price.
        comm_ob = make_communicator(3)
        spmm_1d_oblivious(dm, dh, comm_ob)
        assert comm_ob.stats.total_bytes("bcast") > 0

    def test_categories_are_disjoint(self):
        adj, dm, dh, _ = make_problem(p=4, seed=6)
        comm = make_communicator(4)
        spmm_1d_sparsity_aware(dm, dh, comm)
        assert comm.stats.total_bytes("bcast") == 0
        comm2 = make_communicator(4)
        spmm_1d_oblivious(dm, dh, comm2)
        assert comm2.stats.total_bytes("alltoall") == 0

    def test_compute_time_charged(self):
        adj, dm, dh, _ = make_problem(p=4, seed=7)
        comm = make_communicator(4)
        spmm_1d_sparsity_aware(dm, dh, comm)
        assert comm.timeline.breakdown()["local"] > 0
