"""Overlapped execution: nonblocking accounting, pipelining, calibration.

Four layers on top of the cross-backend conformance checks in
``comm_conformance.py``:

* the simulator's deferred-charge handles implement exactly the
  ``max(comm, compute)`` overlap accounting (an immediate wait reproduces
  the blocking collective's clocks bit for bit);
* the pipelined compiled operators are bit-identical to the synchronous
  path and *cheaper* on the simulated clock whenever there is compute to
  hide behind;
* the planner's pipeline-depth axis and overlap-aware ``epoch_cost``
  term (default depth keeps every prediction byte-identical to the
  pre-overlap planner);
* the per-host calibration file (``repro calibrate``) feeding the
  scorer's backend-overhead table and the plan-cache key.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm import make_communicator
from repro.comm.base import CommHandle, CompletedCommHandle, Communicator
from repro.core import (BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, DistTrainConfig, ProcessGrid,
                        epoch_cost, train_distributed)
from repro.core.engine import DenseSpec, SpmmEngine, compile as compile_spmm
from repro.plan import (PlanCandidate, Planner, effective_message_overheads,
                        enumerate_candidates, load_message_overheads,
                        measure_message_overhead, run_calibration,
                        score_candidates, write_calibration)
from repro.plan.score import BACKEND_MESSAGE_OVERHEAD_S, PlanMatrixCache


def _problem(n=64, p=4, f=6, density=0.12, seed=3):
    rng = np.random.default_rng(seed)
    adj = sp.random(n, n, density=density, random_state=rng, format="csr")
    adj = (adj + adj.T).tocsr()
    adj.setdiag(0)
    adj.eliminate_zeros()
    dist = BlockRowDistribution.uniform(n, p)
    matrix = DistSparseMatrix(adj, dist)
    dense = DistDenseMatrix.from_global(rng.normal(size=(n, f)), dist)
    return adj, matrix, dense


# ----------------------------------------------------------------------
# Simulator overlap accounting
# ----------------------------------------------------------------------
class TestSimOverlapAccounting:
    def test_immediate_wait_equals_blocking(self):
        """post + wait with nothing in between must charge exactly what
        the blocking collective charges — including the group sync."""
        value = np.ones((128, 8))
        blocking = make_communicator(4, backend="sim")
        blocking.broadcast(value, root=0)
        nonblocking = make_communicator(4, backend="sim")
        nonblocking.ibroadcast(value, root=0).wait()
        assert nonblocking.elapsed() == blocking.elapsed()
        assert nonblocking.breakdown() == blocking.breakdown()
        np.testing.assert_array_equal(nonblocking.timeline.clocks,
                                      blocking.timeline.clocks)

    def test_overlapped_window_costs_max_of_comm_and_compute(self):
        """The charged cost of (issue, compute, wait) is max(comm, compute)
        — the cost-model honesty requirement of the sim backend."""
        value = np.ones((1000, 16))
        comm = make_communicator(2, backend="sim")
        comm.broadcast(value, root=0)
        t_comm = comm.elapsed()
        assert t_comm > 0

        for t_compute in (t_comm / 3.0, 3.0 * t_comm):
            overlapped = make_communicator(2, backend="sim")
            handle = overlapped.ibroadcast(value, root=0)
            for r in overlapped.ranks():
                overlapped.charge_seconds(r, t_compute)
            handle.wait()
            assert overlapped.elapsed() == pytest.approx(
                max(t_comm, t_compute), rel=1e-12)

    def test_test_completes_once_compute_covers_comm(self):
        comm = make_communicator(2, backend="sim")
        handle = comm.ibroadcast(np.ones((512, 8)), root=0)
        assert handle.test() is False, "no simulated time has elapsed yet"
        for r in comm.ranks():
            comm.charge_seconds(r, 1.0)     # >> the broadcast time
        assert handle.test() is True
        elapsed = comm.elapsed()
        handle.wait()
        assert comm.elapsed() == elapsed, \
            "a fully-overlapped collective charges no extra time at wait"

    def test_iexchange_matches_blocking_exchange_clocks(self):
        msgs = [(0, 1, np.ones(100)), (2, 3, np.full(300, 2.0))]
        blocking = make_communicator(4, backend="sim")
        blocking.exchange(msgs, sync_ranks=range(4))
        nonblocking = make_communicator(4, backend="sim")
        nonblocking.iexchange(msgs, sync_ranks=range(4)).wait()
        np.testing.assert_array_equal(nonblocking.timeline.clocks,
                                      blocking.timeline.clocks)


# ----------------------------------------------------------------------
# Pipelined compiled execution
# ----------------------------------------------------------------------
class TestPipelinedCompiled:
    def test_pipeline_depth_validated(self):
        _, matrix, dense = _problem()
        comm = make_communicator(4, backend="sim")
        with pytest.raises(ValueError):
            compile_spmm(matrix, DenseSpec.like(dense), comm,
                         sparsity_aware=False, pipeline_depth=0)
        op = compile_spmm(matrix, DenseSpec.like(dense), comm,
                          sparsity_aware=False, pipeline_depth=2)
        assert op.pipeline_depth == 2

    def test_pipelined_1d_oblivious_hides_broadcast_time(self):
        """On the simulator, the double-buffered CAGNET schedule must be
        bit-identical to the synchronous one and strictly cheaper (the
        broadcasts hide behind the per-step multiplies)."""
        adj, matrix, dense = _problem(n=400, p=4, f=16, density=0.05)
        sync_comm = make_communicator(4, backend="sim")
        sync = compile_spmm(matrix, DenseSpec.like(dense), sync_comm,
                            sparsity_aware=False)
        z_sync = np.array(sync(dense).to_global(), copy=True)
        t_sync = sync_comm.elapsed()

        piped_comm = make_communicator(4, backend="sim")
        piped = compile_spmm(matrix, DenseSpec.like(dense), piped_comm,
                             sparsity_aware=False, pipeline_depth=2)
        z_piped = piped(dense).to_global()
        t_piped = piped_comm.elapsed()

        np.testing.assert_array_equal(z_piped, z_sync)
        assert t_piped < t_sync, \
            f"pipelining must reduce simulated time ({t_piped} vs {t_sync})"

    def test_pipelined_15d_bit_identical_and_cheaper(self):
        adj, _, _ = _problem(n=256, p=8, f=12, density=0.08)
        grid = ProcessGrid(nranks=8, replication=2)
        dist = BlockRowDistribution.uniform(adj.shape[0], grid.nrows)
        matrix = DistSparseMatrix(adj, dist)
        dense = DistDenseMatrix.from_global(
            np.random.default_rng(0).normal(size=(adj.shape[0], 12)), dist)
        times = {}
        results = {}
        for depth in (1, 2):
            comm = make_communicator(8, backend="sim")
            engine = SpmmEngine(comm, algorithm="1.5d", sparsity_aware=False,
                                grid=grid)
            op = engine.compile(matrix, DenseSpec.like(dense),
                                pipeline_depth=depth)
            results[depth] = np.array(op(dense).to_global(), copy=True)
            times[depth] = comm.elapsed()
        np.testing.assert_array_equal(results[2], results[1])
        assert times[2] < times[1]

    def test_trainer_threads_pipeline_depth(self, tiny_dataset):
        """Training with pipeline_depth=2 is bit-identical to depth 1 on
        the simulator (losses, accuracy) — pipelining changes when
        exchanges are waited on, never what they deliver."""
        base = DistTrainConfig(n_ranks=4, algorithm="1d",
                               sparsity_aware=False, partitioner=None,
                               epochs=3, backend="sim")
        ref = train_distributed(tiny_dataset, base, eval_every=0)
        piped = train_distributed(
            tiny_dataset, dataclasses.replace(base, pipeline_depth=2),
            eval_every=0)
        assert [r.loss for r in piped.history] == \
            [r.loss for r in ref.history]
        assert piped.test_accuracy == ref.test_accuracy
        assert piped.avg_epoch_time_s < ref.avg_epoch_time_s, \
            "the overlapped epochs must be cheaper on the simulated clock"

    def test_config_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DistTrainConfig(pipeline_depth=0)
        with pytest.raises(ValueError):
            DistTrainConfig(pipeline_depth="2")  # must be an int
        assert DistTrainConfig(pipeline_depth=2).pipeline_depth == 2


# ----------------------------------------------------------------------
# Default nonblocking fallback of the ABC
# ----------------------------------------------------------------------
class TestDefaultHandles:
    def test_base_defaults_return_completed_handles(self):
        """A backend that only implements the blocking collectives gets
        correct (eager) nonblocking semantics for free."""

        class MinimalComm(Communicator):
            backend_name = "minimal"

            def alltoallv(self, send, ranks=None, category="alltoall"):
                group = self._resolve_ranks(ranks)
                p = len(group)
                return [[send[j][i] for j in range(p)] for i in range(p)]

            def broadcast(self, value, root, ranks=None, category="bcast"):
                group = self._resolve_ranks(ranks)
                return [value if r == root else np.array(value, copy=True)
                        for r in group]

            def allreduce(self, arrays, ranks=None, op="sum",
                          category="allreduce"):
                from repro.comm.base import reduce_stack
                result = reduce_stack(arrays, op)
                return [result.copy() for _ in self._resolve_ranks(ranks)]

            def allgather(self, arrays, ranks=None, category="allgather"):
                raise NotImplementedError

            def reduce(self, arrays, root, ranks=None, op="sum",
                       category="reduce"):
                raise NotImplementedError

            def exchange(self, messages, category="p2p", sync_ranks=None):
                return {(s, d): payload for s, d, payload in messages}

        comm = MinimalComm(3)
        handle = comm.ibroadcast(np.arange(4.0), root=0)
        assert isinstance(handle, CompletedCommHandle)
        assert handle.test() is True
        np.testing.assert_array_equal(handle.wait()[1], np.arange(4.0))
        delivered = comm.iexchange([(0, 1, np.ones(2))]).wait()
        np.testing.assert_array_equal(delivered[(0, 1)], np.ones(2))

    def test_handle_caches_errors(self):
        class Boom(RuntimeError):
            pass

        class FailingHandle(CommHandle):
            def _finish(self):
                raise Boom("delivery failed")

        handle = FailingHandle()
        with pytest.raises(Boom):
            handle.wait()
        with pytest.raises(Boom):
            handle.wait()       # cached, not re-run
        assert handle.test() is True  # "done" (failed) is a final state


# ----------------------------------------------------------------------
# Overlap-aware cost model + planner axis
# ----------------------------------------------------------------------
class TestOverlapPlanning:
    def _matrix(self, n=96, p=4):
        rng = np.random.default_rng(1)
        adj = sp.random(n, n, density=0.1, random_state=rng, format="csr")
        adj = (adj + adj.T).tocsr()
        return adj, DistSparseMatrix(
            adj, BlockRowDistribution.uniform(n, p))

    def test_epoch_cost_default_depth_unchanged(self):
        _, matrix = self._matrix()
        dims = [32, 16, 8]
        base = epoch_cost(matrix, dims, "perlmutter", algorithm="1d",
                          sparsity_aware=False)
        explicit = epoch_cost(matrix, dims, "perlmutter", algorithm="1d",
                              sparsity_aware=False, pipeline_depth=1)
        assert base.as_dict() == explicit.as_dict()

    def test_epoch_cost_overlap_reduces_staged_variants_only(self):
        _, matrix = self._matrix()
        dims = [32, 16, 8]
        sync = epoch_cost(matrix, dims, "perlmutter", algorithm="1d",
                          sparsity_aware=False)
        piped = epoch_cost(matrix, dims, "perlmutter", algorithm="1d",
                           sparsity_aware=False, pipeline_depth=2)
        assert piped.total_s < sync.total_s
        assert piped.latency_s == sync.latency_s, \
            "latency stays on the critical path"
        # 1D sparsity-aware has a single un-staged exchange: no change.
        sa_sync = epoch_cost(matrix, dims, "perlmutter", algorithm="1d",
                             sparsity_aware=True)
        sa_piped = epoch_cost(matrix, dims, "perlmutter", algorithm="1d",
                              sparsity_aware=True, pipeline_depth=2)
        assert sa_piped.as_dict() == sa_sync.as_dict()

    def test_enumerate_pipeline_depth_axis(self):
        default = enumerate_candidates(4, backends=["sim"])
        assert all(c.pipeline_depth == 1 for c in default)
        deep = enumerate_candidates(4, backends=["sim"],
                                    pipeline_depths=(1, 2))
        depths = {(c.algorithm, c.mode, c.pipeline_depth) for c in deep}
        assert ("1d", "oblivious", 2) in depths
        # 1D SA executes identically at every depth: only one enumerated.
        assert ("1d", "sparsity_aware", 2) not in depths
        assert ("1d", "sparsity_aware", 1) in depths
        with pytest.raises(ValueError):
            enumerate_candidates(4, pipeline_depths=(0,))

    def test_scorer_prefers_pipelined_oblivious(self):
        adj, _ = self._matrix()
        cache = PlanMatrixCache(adj)
        candidates = enumerate_candidates(
            4, backends=["sim"], partitioners=[None],
            algorithms=["1d"], modes=["oblivious"], pipeline_depths=(1, 2))
        scored = score_candidates(candidates, cache, [32, 16, 8],
                                  "perlmutter")
        by_depth = {s.candidate.pipeline_depth: s.predicted_s
                    for s in scored}
        assert by_depth[2] < by_depth[1]

    def test_planner_probes_pipelined_candidates(self, tiny_dataset):
        planner = Planner(machine="perlmutter-scaled", backends=["sim"],
                          partitioners=[None], algorithms=["1d"],
                          modes=["oblivious"], pipeline_depths=(1, 2),
                          probe=True, top_k=2, probe_budget_s=None,
                          use_cache=False)
        report = planner.plan_for_dataset(tiny_dataset, 4)
        depths = {row["depth"] for row in report.table}
        assert depths == {1, 2}
        assert report.probes_run == 2, \
            "depth-1 and depth-2 schedules are distinct probe groups"
        assert report.plan.pipeline_depth in (1, 2)

    def test_plan_roundtrips_pipeline_depth(self):
        from repro.plan import ExecutionPlan
        plan = ExecutionPlan(
            algorithm="1d", sparsity_aware=False, backend="sim",
            partitioner=None, replication_factor=1, n_ranks=4,
            predicted_s=1.0, probed_s=None, source="analytic",
            machine="perlmutter", fingerprint="x", pipeline_depth=2)
        clone = ExecutionPlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert clone == plan
        # Pre-overlap cache records (no depth key) default to synchronous.
        legacy = dict(plan.as_dict())
        legacy.pop("pipeline_depth")
        assert ExecutionPlan.from_dict(legacy).pipeline_depth == 1


# ----------------------------------------------------------------------
# Calibration (repro calibrate)
# ----------------------------------------------------------------------
class TestCalibration:
    def test_sim_is_pinned_at_zero(self):
        result = measure_message_overhead("sim")
        assert result.per_message_s == 0.0

    def test_measure_real_backend(self):
        result = measure_message_overhead("threaded", nranks=2, rounds=5)
        assert result.per_message_s > 0.0
        assert result.messages == 5  # one logged message per broadcast pair

    def test_round_trip_and_effective_table(self, tmp_path, monkeypatch):
        path = tmp_path / "calibration.json"
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        assert load_message_overheads() == {}
        baseline = effective_message_overheads()
        assert baseline == {**BACKEND_MESSAGE_OVERHEAD_S, "sim": 0.0}

        payload = run_calibration(backends=["sim", "threaded"], quick=True)
        target = write_calibration(payload)
        assert target == path
        table = load_message_overheads()
        assert table["threaded"] > 0.0
        effective = effective_message_overheads()
        assert effective["threaded"] == table["threaded"]
        assert effective["sim"] == 0.0, "sim stays pinned at zero"
        assert effective["process"] == BACKEND_MESSAGE_OVERHEAD_S["process"], \
            "unmeasured backends keep the shipped default"

    def test_corrupt_file_falls_back_to_defaults(self, tmp_path, monkeypatch):
        path = tmp_path / "calibration.json"
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        path.write_text("{not json")
        assert load_message_overheads() == {}
        path.write_text(json.dumps({"overheads": {"threaded": -5.0,
                                                  "process": "nan?"}}))
        assert load_message_overheads() == {}, \
            "negative/non-numeric entries are rejected"

    def test_calibration_invalidates_plan_cache_key(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION",
                           str(tmp_path / "calibration.json"))
        planner = Planner(machine="perlmutter", use_cache=False)
        before = planner._space_signature()
        write_calibration({"version": 1, "host": "t",
                           "overheads": {"threaded": 0.5}})
        after = planner._space_signature()
        assert before != after, \
            "recalibrating must change the plan-cache key"
