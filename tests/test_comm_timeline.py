"""Tests for repro.comm.timeline."""

import numpy as np
import pytest

from repro.comm.timeline import Timeline, WAIT_CATEGORY


class TestAdvance:
    def test_initial_clocks_zero(self):
        t = Timeline(3)
        assert t.elapsed() == 0.0
        assert t.now(1) == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Timeline(0)

    def test_advance_single_rank(self):
        t = Timeline(2)
        t.advance(0, 1.5, "local")
        assert t.now(0) == pytest.approx(1.5)
        assert t.now(1) == 0.0
        assert t.elapsed() == pytest.approx(1.5)

    def test_advance_negative_rejected(self):
        t = Timeline(2)
        with pytest.raises(ValueError):
            t.advance(0, -1.0, "local")

    def test_advance_all_default_ranks(self):
        t = Timeline(3)
        t.advance_all([1.0, 2.0, 3.0], "alltoall")
        assert t.clocks.tolist() == [1.0, 2.0, 3.0]

    def test_advance_all_subset(self):
        t = Timeline(4)
        t.advance_all([1.0, 2.0], "x", ranks=[1, 3])
        assert t.now(1) == 1.0
        assert t.now(3) == 2.0
        assert t.now(0) == 0.0


class TestSynchronize:
    def test_sync_brings_all_to_max(self):
        t = Timeline(3)
        t.advance(0, 5.0, "local")
        target = t.synchronize()
        assert target == pytest.approx(5.0)
        assert np.allclose(t.clocks, 5.0)

    def test_sync_subset_only(self):
        t = Timeline(3)
        t.advance(0, 5.0, "local")
        t.synchronize(ranks=[0, 1])
        assert t.now(1) == pytest.approx(5.0)
        assert t.now(2) == 0.0

    def test_wait_time_attributed_to_wait_category(self):
        t = Timeline(2)
        t.advance(0, 3.0, "local")
        t.synchronize()
        assert t.category_seconds(WAIT_CATEGORY)[1] == pytest.approx(3.0)
        assert t.category_seconds(WAIT_CATEGORY)[0] == 0.0


class TestBreakdown:
    def test_breakdown_max_mean_sum(self):
        t = Timeline(2)
        t.advance(0, 1.0, "local")
        t.advance(1, 3.0, "local")
        assert t.breakdown("max")["local"] == pytest.approx(3.0)
        assert t.breakdown("mean")["local"] == pytest.approx(2.0)
        assert t.breakdown("sum")["local"] == pytest.approx(4.0)

    def test_breakdown_unknown_reducer(self):
        t = Timeline(2)
        with pytest.raises(ValueError):
            t.breakdown("median")

    def test_wait_excluded_by_default(self):
        t = Timeline(2)
        t.advance(0, 1.0, "local")
        t.synchronize()
        assert WAIT_CATEGORY not in t.breakdown()
        assert WAIT_CATEGORY in t.breakdown(include_wait=True)

    def test_category_seconds_for_unknown_category(self):
        t = Timeline(2)
        assert t.category_seconds("nope").tolist() == [0.0, 0.0]

    def test_per_rank_breakdown_shapes(self):
        t = Timeline(3)
        t.advance(1, 2.0, "bcast")
        per = t.per_rank_breakdown()
        assert per["bcast"].shape == (3,)
        assert per["bcast"][1] == 2.0

    def test_reset(self):
        t = Timeline(2)
        t.advance(0, 1.0, "local")
        t.reset()
        assert t.elapsed() == 0.0
        assert t.breakdown() == {}

    def test_checkpoint_equals_elapsed(self):
        t = Timeline(2)
        t.advance(1, 4.0, "local")
        assert t.checkpoint() == t.elapsed()

    def test_categories_sorted(self):
        t = Timeline(1)
        t.advance(0, 1.0, "z")
        t.advance(0, 1.0, "a")
        assert t.categories() == ["a", "z"]
