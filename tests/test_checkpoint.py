"""Checkpoint/restore and fault-tolerant training.

Four layers, matching the fault-tolerance claims bottom-up:

1. the on-disk format: atomic writes, header validation (magic, version,
   truncation, CRC), pruning;
2. corruption handling: a damaged newest checkpoint falls back to the
   previous intact one with a warning, an all-corrupt directory raises a
   clear :class:`CheckpointError`, and a fingerprint mismatch refuses to
   resume into a silently diverging run;
3. the bit-identity property (Hypothesis over the kill epoch, every
   backend): train with checkpoint-every-1, kill a rank mid-run, let the
   supervised retry restore and finish — the final weights must be
   **bitwise identical** to the uninterrupted run;
4. elastic restart: a killed rank at p=4 re-plans to p=3, training
   continues and converges, and the dead configuration is recorded in
   the plan cache and never served again.
"""

from __future__ import annotations

import dataclasses
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.faults import FaultPlan, WorkerFailure
from repro.core import DistTrainConfig, train_distributed
from repro.core.checkpoint import (CheckpointError, CheckpointManager,
                                   TrainingCheckpoint, config_fingerprint,
                                   read_checkpoint, write_checkpoint)
from repro.core.config import training_layer_dims
from repro.graphs import load_dataset
from repro.plan import PlanCache, Planner, matrix_fingerprint

SETTINGS = dict(max_examples=4, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.function_scoped_fixture])


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("reddit", scale=0.05, n_features=10, n_classes=3,
                        seed=9)


def _ckpt(epoch: int, seed: int = 0, fingerprint: str = "fp") \
        -> TrainingCheckpoint:
    rng = np.random.default_rng(seed)
    return TrainingCheckpoint(
        epoch=epoch,
        weights=[rng.normal(size=(4, 3)), rng.normal(size=(3, 2))],
        optimizer_state={"name": "sgd", "learning_rate": 0.05},
        rng_state=np.random.RandomState(seed).get_state(),
        plan_fingerprint=fingerprint,
        history=[{"epoch": e, "loss": 1.0 / (e + 1), "epoch_time_s": 0.1,
                  "train_accuracy": None, "val_accuracy": None}
                 for e in range(epoch)])


# ----------------------------------------------------------------------
# 1. Format
# ----------------------------------------------------------------------
class TestCheckpointFormat:
    def test_roundtrip_bitwise(self, tmp_path):
        ckpt = _ckpt(3, seed=7)
        path = write_checkpoint(tmp_path / "c.ckpt", ckpt)
        back = read_checkpoint(path)
        assert back.epoch == 3
        assert back.plan_fingerprint == "fp"
        for got, want in zip(back.weights, ckpt.weights):
            np.testing.assert_array_equal(got, want)
            assert got.dtype == want.dtype
        assert back.history == ckpt.history
        restored = np.random.RandomState()
        restored.set_state(back.rng_state)
        expected = np.random.RandomState(7)
        assert restored.random_sample(5).tolist() \
            == expected.random_sample(5).tolist()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 32)
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint(path)

    def test_truncation_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "c.ckpt", _ckpt(1))
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)
        path.write_bytes(raw[:10])           # inside the header
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_bitflip_rejected_by_crc(self, tmp_path):
        path = write_checkpoint(tmp_path / "c.ckpt", _ckpt(1))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC32"):
            read_checkpoint(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(np.random.default_rng(0).bytes(256))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_manager_prunes_to_keep(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for epoch in (1, 2, 3, 4):
            mgr.save(_ckpt(epoch))
        names = [p.name for p in mgr.paths()]
        assert names == ["ckpt-00000003.ckpt", "ckpt-00000004.ckpt"]
        assert mgr.load_latest().epoch == 4

    def test_no_temp_files_survive_save(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        mgr.save(_ckpt(1))
        leftovers = [p for p in tmp_path.iterdir()
                     if not p.name.endswith(".ckpt")]
        assert leftovers == [], "atomic write must not leave temp files"

    def test_empty_directory_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None


# ----------------------------------------------------------------------
# 2. Corruption handling / fingerprint guard
# ----------------------------------------------------------------------
class TestCorruptionHandling:
    def test_corrupt_newest_falls_back_to_intact(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        mgr.save(_ckpt(1, seed=1))
        good = mgr.save(_ckpt(2, seed=2))
        bad = mgr.save(_ckpt(3, seed=3))
        bad.write_bytes(bad.read_bytes()[:20])     # truncate the newest
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            ckpt = mgr.load_latest()
        assert ckpt.epoch == 2
        np.testing.assert_array_equal(ckpt.weights[0],
                                      read_checkpoint(good).weights[0])

    def test_all_corrupt_raises_listing_failures(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        for epoch in (1, 2):
            path = mgr.save(_ckpt(epoch))
            path.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointError,
                               match="no intact checkpoint"):
                mgr.load_latest()

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(_ckpt(2, fingerprint="aaaa"))
        with pytest.raises(CheckpointError, match="incompatible plans"):
            mgr.load_latest(expect_fingerprint="bbbb")
        assert mgr.load_latest(expect_fingerprint="aaaa").epoch == 2
        assert mgr.load_latest(expect_fingerprint=None).epoch == 2

    def test_trainer_rejects_foreign_checkpoint(self, dataset, tmp_path):
        """End-to-end: resuming with a numerically different config
        (another learning rate) fails loudly, not silently."""
        base = dict(n_ranks=2, epochs=2, backend="sim", hidden=6,
                    n_layers=2, checkpoint_dir=str(tmp_path),
                    checkpoint_every=1)
        train_distributed(dataset, DistTrainConfig(**base), eval_every=0)
        other = DistTrainConfig(**{**base, "learning_rate": 0.01},
                                resume=True)
        with pytest.raises(CheckpointError, match="incompatible plans"):
            train_distributed(dataset, other, eval_every=0)

    def test_config_fingerprint_axes(self):
        a = DistTrainConfig(n_ranks=4, epochs=5)
        # Strategy axes (backend, pipelining) are proven bit-identical
        # and must not invalidate a checkpoint...
        assert config_fingerprint(a) == config_fingerprint(
            DistTrainConfig(n_ranks=4, epochs=5, backend="threaded",
                            pipeline_depth=2, grad_overlap=True))
        # ...while trajectory-changing axes must.
        assert config_fingerprint(a) != config_fingerprint(
            DistTrainConfig(n_ranks=4, epochs=5, learning_rate=0.01))
        assert config_fingerprint(a) != config_fingerprint(
            DistTrainConfig(n_ranks=4, epochs=5, grad_dtype="float16"))


# ----------------------------------------------------------------------
# 3. Bit-identical resume (the property) on every backend
# ----------------------------------------------------------------------
EPOCHS = 4
_REFERENCE: dict = {}


def _reference_weights(dataset, backend):
    """Uninterrupted final weights for one backend (computed once)."""
    if backend not in _REFERENCE:
        cfg = _train_config(backend)
        result = train_distributed(dataset, cfg, eval_every=0)
        _REFERENCE[backend] = result.model.weight_state()
    return _REFERENCE[backend]


def _train_config(backend, **kw):
    return DistTrainConfig(n_ranks=2, epochs=EPOCHS, backend=backend,
                           hidden=6, n_layers=2, **kw)


class TestResumeBitIdentity:
    @pytest.mark.parametrize("backend", ("sim", "threaded", "process"))
    @given(kill_epoch=st.integers(min_value=0, max_value=EPOCHS - 1),
           kill_rank=st.integers(min_value=0, max_value=1))
    @settings(**SETTINGS)
    def test_kill_resume_bitwise_identical(self, dataset, backend,
                                           kill_epoch, kill_rank):
        """Kill a rank at a Hypothesis-chosen epoch; the supervised
        restart restores the last checkpoint and the final weights are
        bit-identical to the run that never failed."""
        reference = _reference_weights(dataset, backend)
        with tempfile.TemporaryDirectory() as ckpt_dir:
            cfg = _train_config(backend, checkpoint_dir=ckpt_dir,
                                checkpoint_every=1, max_restarts=1)
            plan = FaultPlan.kill(rank=kill_rank, epoch=kill_epoch)
            result = train_distributed(dataset, cfg, eval_every=0,
                                       fault_plan=plan)
        assert result.restarts == 1
        # A kill during epoch 0 finds no checkpoint (they are written on
        # epoch completion): the retry legitimately starts from scratch.
        expected_resume = kill_epoch if kill_epoch > 0 else None
        assert result.resumed_from_epoch == expected_resume
        final = result.model.weight_state()
        assert len(final) == len(reference)
        for got, want in zip(final, reference):
            np.testing.assert_array_equal(
                got, want,
                err_msg=f"resume after kill@epoch{kill_epoch} diverged "
                        f"on backend {backend!r}")

    @pytest.mark.parametrize("backend", ("sim", "threaded", "process"))
    def test_cold_resume_bitwise_identical(self, dataset, backend,
                                           tmp_path):
        """Stop after half the epochs, resume in a fresh run: identical
        to training straight through."""
        reference = _reference_weights(dataset, backend)
        half = dataclasses.replace(
            _train_config(backend, checkpoint_dir=str(tmp_path),
                          checkpoint_every=1),
            epochs=EPOCHS // 2)
        train_distributed(dataset, half, eval_every=0)
        full = _train_config(backend, checkpoint_dir=str(tmp_path),
                             checkpoint_every=1, resume=True)
        result = train_distributed(dataset, full, eval_every=0)
        assert result.resumed_from_epoch == EPOCHS // 2
        for got, want in zip(result.model.weight_state(), reference):
            np.testing.assert_array_equal(got, want)

    def test_without_restart_budget_failure_propagates(self, dataset):
        cfg = _train_config("sim")
        with pytest.raises(WorkerFailure) as excinfo:
            train_distributed(dataset, cfg, eval_every=0,
                              fault_plan=FaultPlan.kill(rank=1, epoch=1))
        assert excinfo.value.rank == 1

    def test_restart_without_checkpoints_starts_over(self, dataset):
        """max_restarts without a checkpoint dir: the retry re-trains
        from scratch and still lands on the reference weights."""
        reference = _reference_weights(dataset, "sim")
        cfg = _train_config("sim", max_restarts=1)
        result = train_distributed(dataset, cfg, eval_every=0,
                                   fault_plan=FaultPlan.kill(rank=0,
                                                             epoch=2))
        assert result.restarts == 1
        assert result.resumed_from_epoch is None
        for got, want in zip(result.model.weight_state(), reference):
            np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# 4. Elastic restart
# ----------------------------------------------------------------------
class TestElasticRestart:
    def test_elastic_replans_at_survivor_count(self, dataset, tmp_path):
        cfg = DistTrainConfig(n_ranks=4, epochs=6, backend="sim", hidden=6,
                              n_layers=2, checkpoint_dir=str(tmp_path),
                              checkpoint_every=1, max_restarts=1,
                              elastic=True)
        plan = FaultPlan.kill(rank=2, epoch=3)
        result = train_distributed(dataset, cfg, eval_every=0,
                                   fault_plan=plan)
        assert result.restarts == 1
        assert result.config.n_ranks == 3, \
            "elastic restart must land at the surviving rank count"
        assert result.resumed_from_epoch == 3
        losses = [rec.loss for rec in result.history]
        assert len(losses) == 6
        assert losses[-1] < losses[0], "training must keep converging"
        # The failed configuration is on record for this matrix.
        assert PlanCache().is_dead(matrix_fingerprint(dataset.adjacency),
                                   "sim", 4)

    def test_planner_never_serves_dead_config(self, dataset, tmp_path):
        adjacency = dataset.adjacency
        dims = training_layer_dims(dataset.node_data.n_features,
                                   dataset.node_data.n_classes,
                                   hidden=6, n_layers=2)
        cache = PlanCache(tmp_path / "cache.json")

        def make_planner():
            return Planner("perlmutter", backends=["sim"],
                           partitioners=["block"], algorithms=["1d"],
                           modes=["sparsity_aware"], probe=False,
                           cache=cache)

        report = make_planner().plan(adjacency, dims, [3, 4])
        winner = report.plan
        cache.mark_dead(matrix_fingerprint(adjacency), winner.backend,
                        winner.n_ranks)
        # Same planner space again: the cached record now matches a dead
        # configuration, so it is a miss and the winner must differ.
        survivor = make_planner().plan(adjacency, dims, [3, 4]).plan
        assert (survivor.backend, survivor.n_ranks) \
            != (winner.backend, winner.n_ranks)
        # With every candidate dead, planning fails with a clear error.
        cache.mark_dead(matrix_fingerprint(adjacency), survivor.backend,
                        survivor.n_ranks)
        with pytest.raises(ValueError, match="excluding dead"):
            make_planner().plan(adjacency, dims, [3, 4])
