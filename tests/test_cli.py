"""Tests for the command-line interface (repro.cli / python -m repro)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.ranks == 8
        assert args.algorithm == "1d"
        assert not args.oblivious
        assert args.backend == "sim"

    def test_backend_choices_follow_registry(self):
        args = build_parser().parse_args(["train", "--backend", "threaded"])
        assert args.backend == "threaded"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--backend", "nope"])

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestDatasetsCommand:
    def test_prints_all_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("reddit", "amazon", "protein", "papers"):
            assert name in out
        assert "paper_vertices" in out


class TestPartitionCommand:
    def test_prints_quality_report(self, capsys):
        code = main(["partition", "--dataset", "reddit", "--scale", "0.05",
                     "--nparts", "4", "--partitioner", "metis_like"])
        assert code == 0
        out = capsys.readouterr().out
        assert "edgecut" in out
        assert "max_send_volume" in out

    def test_new_partitioners_available(self, capsys):
        code = main(["partition", "--dataset", "reddit", "--scale", "0.05",
                     "--nparts", "4", "--partitioner", "hypergraph"])
        assert code == 0


class TestTrainCommand:
    def test_sparsity_aware_run(self, capsys):
        code = main(["train", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "4", "--epochs", "2", "--machine", "laptop"])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg_epoch_time_s" in out
        assert "test_accuracy" in out
        assert "SA+GVB" in out

    def test_oblivious_baseline_label(self, capsys):
        code = main(["train", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "4", "--epochs", "1", "--oblivious",
                     "--partitioner", "none", "--machine", "laptop"])
        assert code == 0
        assert "CAGNET" in capsys.readouterr().out

    def test_infeasible_config_returns_error_code(self, capsys):
        # 1.5D with a replication factor that does not divide the grid.
        code = main(["train", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "6", "--algorithm", "1.5d",
                     "--replication", "4", "--epochs", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBenchCommand:
    def test_table3(self, capsys):
        code = main(["bench", "table3", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "papers" in out

    def test_table2(self, capsys):
        code = main(["bench", "table2", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "load_imbalance_pct" in out

    def test_fig3_prints_series(self, capsys):
        code = main(["bench", "fig3", "--scale", "0.05", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "epoch time per scheme" in out

    def test_quick_smoke_sim_backend(self, capsys):
        """The CI smoke target: ``python -m repro bench --quick --backend sim``
        (scripts/smoke.sh runs exactly this under a hard 60 s timeout)."""
        code = main(["bench", "--quick", "--backend", "sim"])
        assert code == 0
        out = capsys.readouterr().out
        assert "quick smoke" in out
        assert "epoch time per scheme" in out
        assert "sim" in out

    def test_quick_smoke_named_experiment(self, capsys):
        code = main(["bench", "fig5", "--quick"])
        assert code == 0
        assert "quick smoke" in capsys.readouterr().out

    def test_bench_without_experiment_or_quick_errors(self, capsys):
        code = main(["bench"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_backend_rejected_for_static_tables(self, capsys):
        code = main(["bench", "table2", "--backend", "threaded"])
        assert code == 2
        assert "no effect" in capsys.readouterr().err

    def test_quick_smoke_threaded_backend(self, capsys):
        code = main(["bench", "--quick", "--backend", "threaded"])
        assert code == 0
        assert "threaded" in capsys.readouterr().out


class TestTuneCommand:
    def test_quick_prints_ranked_table_and_plan(self, capsys, tmp_path):
        code = main(["tune", "--quick", "--dataset", "amazon",
                     "--cache", str(tmp_path / "plans.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Autotuned plan space" in out
        assert "predicted_s" in out and "probed_s" in out
        assert "chosen plan" in out
        assert "plan cache: MISS" in out

    def test_second_run_hits_cache_with_zero_probes(self, capsys, tmp_path):
        argv = ["tune", "--quick", "--dataset", "amazon",
                "--cache", str(tmp_path / "plans.json")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "plan cache: HIT (0 probes)" in out

    def test_nranks_and_no_probe(self, capsys, tmp_path):
        code = main(["tune", "--dataset", "reddit", "--scale", "0.05",
                     "--nranks", "4", "8", "--no-probe",
                     "--cache", str(tmp_path / "plans.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "MISS (0 probes)" in out
        assert "source = analytic" in out

    def test_no_cache_disables_persistence(self, capsys):
        code = main(["tune", "--quick", "--dataset", "amazon", "--no-cache"])
        assert code == 0
        assert "[disabled]" in capsys.readouterr().out


class TestAutoTrainFlag:
    def test_train_auto_reports_planner_choice(self, capsys):
        code = main(["train", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "4", "--epochs", "1", "--machine", "laptop",
                     "--auto"])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner chose:" in out
        assert "AUTO" not in out.split("scheme = ")[1].splitlines()[0]

    def test_bench_auto_appends_planner_rows(self, capsys):
        code = main(["bench", "--quick", "--auto"])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner AUTO rows" in out
        assert "AUTO:" in out            # the series block has an AUTO line

    def test_bench_auto_rejected_for_static_tables(self, capsys):
        code = main(["bench", "table3", "--auto"])
        assert code == 2
        assert "no effect" in capsys.readouterr().err


class TestMachineFlag:
    def test_bench_machine_flag(self, capsys):
        code = main(["bench", "--quick", "--machine", "laptop"])
        assert code == 0
        assert "quick smoke" in capsys.readouterr().out

    def test_bench_machine_rejected_for_static_tables(self, capsys):
        code = main(["bench", "table2", "--machine", "laptop"])
        assert code == 2
        assert "no effect" in capsys.readouterr().err

    def test_repro_machine_env_sets_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE", "laptop")
        assert build_parser().parse_args(["train"]).machine == "laptop"
        assert build_parser().parse_args(["cost"]).machine == "laptop"
        assert build_parser().parse_args(["tune"]).machine == "laptop"
        # bench resolves the env var inside the timed experiments
        # (bench_machine), keeping static tables usable with it set.
        from repro.bench import bench_machine
        assert build_parser().parse_args(["bench"]).machine is None
        assert bench_machine() == "laptop"

    def test_repro_machine_env_does_not_break_static_tables(self, capsys,
                                                            monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE", "laptop")
        assert main(["bench", "table3", "--scale", "0.05"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE", "laptop")
        args = build_parser().parse_args(["train", "--machine", "perlmutter"])
        assert args.machine == "perlmutter"


class TestCostCommand:
    def test_reports_speedup(self, capsys):
        code = main(["cost", "--dataset", "amazon", "--scale", "0.05",
                     "--ranks", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparsity-aware 1D SpMM cost" in out
        assert "speedup" in out

    def test_reports_planner_analytics(self, capsys):
        code = main(["cost", "--dataset", "amazon", "--scale", "0.05",
                     "--ranks", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crossover_process_count" in out
        assert "best_replication_factor" in out

    def test_block_distribution_without_partitioner(self, capsys):
        code = main(["cost", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "4", "--partitioner", "none"])
        assert code == 0


class TestMemoryCommand:
    def test_small_graph_fits(self, capsys):
        code = main(["memory", "--vertices", "100000", "--edges", "1000000",
                     "--features", "64", "--classes", "10", "--ranks", "8"])
        assert code == 0
        assert "fits in one" in capsys.readouterr().out

    def test_paper_scale_amazon_at_p4_does_not_fit(self, capsys):
        code = main(["memory", "--vertices", "14249639",
                     "--edges", "230788269", "--features", "300",
                     "--classes", "24", "--ranks", "4"])
        assert code == 1
        assert "False" in capsys.readouterr().out
