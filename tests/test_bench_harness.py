"""Tests for the benchmark harness, experiment entry points and reporting."""

import math

import numpy as np
import pytest

from repro.bench import (STANDARD_SCHEMES, Scheme, bench_epochs, bench_scale,
                         format_kv, format_series, format_table,
                         run_scheme_grid, run_single, speedup_table,
                         table2_metis_comm_stats, table3_dataset_stats)
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("protein", scale=0.05, n_features=10, n_classes=3,
                        seed=0)


class TestReporting:
    def test_format_table_alignment_and_content(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.000123}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert "10" in text
        assert "1.230e-04" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_respects_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_format_series_groups(self):
        rows = [{"scheme": "SA", "p": 4, "t": 1.0},
                {"scheme": "SA", "p": 8, "t": 0.5},
                {"scheme": "CAGNET", "p": 4, "t": 2.0}]
        text = format_series(rows, group_by="scheme", x="p", y="t")
        assert "SA" in text and "CAGNET" in text
        assert "(4, 1)" in text

    def test_format_kv(self):
        text = format_kv({"x": 1.5, "name": "amazon"}, title="facts")
        assert "facts" in text and "x = 1.5" in text


class TestHarness:
    def test_standard_schemes_cover_paper_lines(self):
        assert {"CAGNET", "SA", "SA+GVB", "SA+METIS"} <= set(STANDARD_SCHEMES)
        assert STANDARD_SCHEMES["CAGNET"].sparsity_aware is False
        assert STANDARD_SCHEMES["SA+GVB"].partitioner == "gvb"

    def test_run_single_row_fields(self, dataset):
        row = run_single(dataset, STANDARD_SCHEMES["SA"], n_ranks=4, epochs=1)
        for key in ("dataset", "scheme", "p", "epoch_time_s", "test_accuracy",
                    "comm_total_MB_per_epoch"):
            assert key in row
        assert row["scheme"] == "SA"
        assert row["p"] == 4
        assert row["epoch_time_s"] > 0

    def test_run_single_includes_partition_stats_when_partitioned(self, dataset):
        row = run_single(dataset, STANDARD_SCHEMES["SA+GVB"], n_ranks=4,
                         epochs=1)
        assert "edgecut" in row and "max_send_volume" in row

    def test_run_scheme_grid_shapes(self, dataset):
        schemes = [STANDARD_SCHEMES["CAGNET"], STANDARD_SCHEMES["SA"]]
        rows = run_scheme_grid(dataset, schemes, p_values=(2, 4), epochs=1)
        assert len(rows) == 4
        assert {r["p"] for r in rows} == {2, 4}

    def test_run_scheme_grid_skips_infeasible(self, dataset):
        scheme = Scheme("SA-15d", sparsity_aware=True, partitioner=None,
                        algorithm="1.5d", replication_factor=4)
        rows = run_scheme_grid(dataset, [scheme], p_values=(8,), epochs=1)
        assert len(rows) == 1
        assert "skipped" in rows[0]
        assert math.isnan(rows[0]["epoch_time_s"])

    def test_speedup_table(self, dataset):
        schemes = [STANDARD_SCHEMES["CAGNET"], STANDARD_SCHEMES["SA"]]
        rows = run_scheme_grid(dataset, schemes, p_values=(4,), epochs=1)
        speedups = speedup_table(rows, baseline_scheme="CAGNET",
                                 target_scheme="SA")
        assert len(speedups) == 1
        assert speedups[0]["speedup"] > 0


class TestExperimentEntryPoints:
    def test_bench_scale_and_epochs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.125")
        monkeypatch.setenv("REPRO_BENCH_EPOCHS", "7")
        assert bench_scale() == 0.125
        assert bench_epochs() == 7

    def test_table3_rows(self):
        rows = table3_dataset_stats(scale=0.05)
        assert {r["name"] for r in rows} == {"reddit", "amazon", "protein",
                                             "papers"}
        for row in rows:
            assert row["vertices"] > 0
            assert row["paper_vertices"] > row["vertices"]

    def test_table2_rows_small(self):
        rows = table2_metis_comm_stats(p_values=(2, 4), scale=0.05)
        assert [r["p"] for r in rows] == [2.0, 4.0]
        for row in rows:
            assert row["max_MB"] >= row["average_MB"]
