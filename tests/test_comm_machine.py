"""Tests for repro.comm.machine."""

import numpy as np
import pytest

from repro.comm.machine import (MachineModel, PRESETS, get_machine, laptop,
                                perlmutter, perlmutter_scaled)


class TestTopology:
    def test_node_of_groups_by_gpus_per_node(self):
        m = perlmutter()
        assert m.gpus_per_node == 4
        assert m.node_of(0) == 0
        assert m.node_of(3) == 0
        assert m.node_of(4) == 1
        assert m.node_of(11) == 2

    def test_node_of_rejects_negative_rank(self):
        with pytest.raises(ValueError):
            perlmutter().node_of(-1)

    def test_same_node(self):
        m = perlmutter()
        assert m.same_node(0, 3)
        assert not m.same_node(3, 4)

    def test_link_intra_vs_inter(self):
        m = perlmutter()
        intra = m.link(0, 1)
        inter = m.link(0, 4)
        assert intra == (m.alpha_intra, m.beta_intra)
        assert inter == (m.alpha_inter, m.beta_inter)
        assert inter[0] > intra[0]

    def test_link_self_is_free(self):
        assert perlmutter().link(2, 2) == (0.0, 0.0)


class TestCosts:
    def test_p2p_time_scales_with_bytes(self):
        m = perlmutter()
        t1 = m.p2p_time(0, 4, 1e6)
        t2 = m.p2p_time(0, 4, 2e6)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(1e6 * m.beta_inter)

    def test_p2p_time_has_latency_floor(self):
        m = perlmutter()
        assert m.p2p_time(0, 1, 0) == pytest.approx(m.alpha_intra)

    def test_compute_times_positive_and_linear(self):
        m = perlmutter()
        assert m.spmm_time(2e11) == pytest.approx(1.0)
        assert m.gemm_time(m.gemm_flop_rate) == pytest.approx(1.0)
        assert m.elementwise_time(0) == 0.0

    def test_worst_link_depends_on_job_size(self):
        m = perlmutter()
        assert m.worst_link(4) == (m.alpha_intra, m.beta_intra)
        assert m.worst_link(8) == (m.alpha_inter, m.beta_inter)


class TestPresets:
    def test_presets_registry_contains_expected_names(self):
        assert {"perlmutter", "perlmutter-scaled", "laptop"} <= set(PRESETS)

    def test_get_machine_by_name_and_passthrough(self):
        m = laptop()
        assert get_machine("laptop").name == "laptop"
        assert get_machine(m) is m

    def test_get_machine_unknown_name(self):
        with pytest.raises(KeyError):
            get_machine("summit")

    def test_scaled_overrides_fields(self):
        m = perlmutter().scaled(spmm_flop_rate=1.0)
        assert m.spmm_flop_rate == 1.0
        assert m.gpus_per_node == perlmutter().gpus_per_node

    def test_perlmutter_scaled_reduces_latency_only(self):
        base = perlmutter()
        scaled = perlmutter_scaled(100.0)
        assert scaled.alpha_intra == pytest.approx(base.alpha_intra / 100.0)
        assert scaled.alpha_inter == pytest.approx(base.alpha_inter / 100.0)
        assert scaled.beta_inter == base.beta_inter
        assert scaled.spmm_flop_rate == base.spmm_flop_rate

    def test_perlmutter_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            perlmutter_scaled(0.0)

    def test_model_is_frozen(self):
        m = perlmutter()
        with pytest.raises(Exception):
            m.alpha_intra = 1.0  # type: ignore[misc]
