"""Chaos conformance matrix: fault injection × every backend.

Part 1 drives every check registered in :mod:`comm_chaos` against every
backend in ``CHAOS_BACKENDS`` (sim, threaded, process) — injected kills
surface as structured ``WorkerFailure``s, faults fire once per plan,
delays charge time, and a failed communicator closes cleanly.

Part 2 is process-backend-specific: a SIGKILLed OS worker is *detected*
(within the fast poll interval, not the watchdog timeout), every shared
memory segment is unlinked afterwards, teardown stays bounded with
already-dead pids, and an in-flight nonblocking handle does not wedge
``close()``.

Run standalone with ``pytest -m conformance``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import comm_chaos as cz
from repro.comm import make_communicator
from repro.comm.faults import FaultPlan, WorkerFailure

pytestmark = pytest.mark.conformance


# ----------------------------------------------------------------------
# Part 1: the chaos suite, parametrized over (backend, check)
# ----------------------------------------------------------------------
@pytest.fixture(params=cz.CHAOS_BACKENDS)
def backend(request):
    return request.param


@pytest.fixture()
def make(backend):
    """Factory for tracked communicators of the backend under test."""
    created = []

    def factory(nranks=4, **kwargs):
        if backend == "process":
            kwargs.setdefault("timeout_s", 60.0)
        comm = make_communicator(nranks, backend=backend, **kwargs)
        created.append(comm)
        return comm

    yield factory
    for comm in created:
        comm.close()


@pytest.mark.parametrize("check", sorted(cz.CHAOS_CHECKS))
def test_chaos(make, check):
    cz.CHAOS_CHECKS[check](make)


def test_registry_covers_all_backends():
    """The chaos net must cover exactly the registered backends."""
    from repro.comm import available_backends
    assert set(available_backends()) == set(cz.CHAOS_BACKENDS)
    assert len(cz.CHAOS_CHECKS) >= 8


# ----------------------------------------------------------------------
# Part 2: process-backend failure semantics (real SIGKILL, shm hygiene)
# ----------------------------------------------------------------------
def _shm_segments(comm):
    """The names of this communicator's live shared-memory segments."""
    prefix = f"rpr{comm._uid}"
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        return sorted(n for n in os.listdir(shm_dir)
                      if n.startswith(prefix))
    # Fallback for platforms without a visible shm mount: the driver-side
    # arena registry (workers only ever attach, never create).
    return sorted(a.shm.name for a in comm._arenas.values())


class TestProcessFailureSemantics:
    """Detection, hygiene and teardown latency when OS workers die."""

    def test_kill_mid_epoch_detected_and_shm_unlinked(self):
        """The headline chaos scenario: a worker SIGKILLed mid-epoch is
        detected quickly (fast poll, not the 600 s watchdog), surfaces as
        WorkerFailure, and leaves zero shm segments behind."""
        comm = make_communicator(3, backend="process", timeout_s=120.0)
        try:
            comm.broadcast(np.ones((64, 8)), root=0)   # arenas exist now
            assert _shm_segments(comm), "expected live arenas mid-run"
            # The plan's op counter starts at injection: this kill
            # addresses the *next* collective.
            comm.inject_faults(FaultPlan.kill(rank=1, op_index=0))
            start = time.monotonic()
            with pytest.raises(WorkerFailure) as excinfo:
                comm.allreduce([np.ones((32, 4))] * 3)
            detect_s = time.monotonic() - start
            assert excinfo.value.rank == 1
            assert excinfo.value.backend == "process"
            assert detect_s < 30.0, \
                f"detection took {detect_s:.1f}s; must not wait out the " \
                f"watchdog timeout"
        finally:
            comm.close()
        assert _shm_segments(comm) == [], "shm segments leaked"
        assert comm._arenas == {}
        comm.close()                                    # idempotent
        assert not any(p.is_alive() for p in comm._procs or [])

    def test_close_tolerates_already_dead_worker(self):
        """Directly killing a worker (no fault plan, no collective in
        flight) must not make close() hang: the liveness pre-scan caps
        join grace for the stragglers stuck in the worker barrier."""
        comm = make_communicator(3, backend="process", timeout_s=120.0)
        comm.broadcast(np.ones(16), root=0)
        comm._procs[2].kill()
        comm._procs[2].join(timeout=10.0)
        start = time.monotonic()
        comm.close()
        close_s = time.monotonic() - start
        assert close_s < 20.0, f"close() took {close_s:.1f}s with a dead pid"
        assert _shm_segments(comm) == []
        assert not any(p.is_alive() for p in comm._procs or [])

    def test_close_with_inflight_handle_and_dead_worker(self):
        """close() drains in-flight nonblocking handles; a worker dying
        under that drain must surface as WorkerFailure (or finish the
        drain) — never hang — and still unlink every segment."""
        comm = make_communicator(3, backend="process", timeout_s=120.0)
        comm.broadcast(np.ones(8), root=0)
        handle = comm.ibroadcast(np.arange(64.0), root=0)
        comm._procs[1].kill()
        start = time.monotonic()
        try:
            comm.close()
        except WorkerFailure as failure:
            assert failure.rank == 1
        close_s = time.monotonic() - start
        assert close_s < 30.0, f"close() took {close_s:.1f}s"
        assert _shm_segments(comm) == []
        comm.close()                                    # idempotent
        del handle

    def test_detection_beats_watchdog_by_orders_of_magnitude(self):
        """With the default (long) watchdog, detection is driven by the
        0.2 s liveness poll — a dead rank costs fractions of a second."""
        comm = make_communicator(2, backend="process", timeout_s=600.0)
        try:
            comm.broadcast(np.ones(4), root=0)
            comm.inject_faults(FaultPlan.kill(rank=0))
            start = time.monotonic()
            with pytest.raises(WorkerFailure):
                comm.allreduce([np.ones(4)] * 2)
            assert time.monotonic() - start < 10.0
        finally:
            comm.close()
        assert _shm_segments(comm) == []
