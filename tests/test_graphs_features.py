"""Tests for synthetic features / labels / splits."""

import numpy as np
import pytest

from repro.graphs.features import (NodeData, make_features, make_node_data,
                                   planted_labels, train_val_test_split)
from repro.graphs.generators import community_ring_graph, erdos_renyi_graph


@pytest.fixture(scope="module")
def graph():
    return community_ring_graph(120, avg_degree=8, n_communities=6, seed=0)


class TestPlantedLabels:
    def test_shape_and_range(self, graph):
        labels = planted_labels(graph, n_classes=5, seed=0)
        assert labels.shape == (120,)
        assert labels.min() >= 0 and labels.max() < 5

    def test_every_class_present(self, graph):
        labels = planted_labels(graph, n_classes=7, seed=1)
        assert set(np.unique(labels)) == set(range(7))

    def test_deterministic(self, graph):
        a = planted_labels(graph, 4, seed=3)
        b = planted_labels(graph, 4, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_labels_correlate_with_structure(self, graph):
        """Label propagation should make neighbours more likely to share a
        label than random assignment would."""
        labels = planted_labels(graph, n_classes=4, seed=0,
                                smoothing_rounds=3)
        coo = graph.tocoo()
        same = (labels[coo.row] == labels[coo.col]).mean()
        assert same > 0.4  # random baseline would be ~0.25

    def test_needs_two_classes(self, graph):
        with pytest.raises(ValueError):
            planted_labels(graph, n_classes=1)


class TestFeatures:
    def test_shape_dtype(self):
        labels = np.array([0, 1, 2, 0])
        feats = make_features(labels, n_features=8, seed=0)
        assert feats.shape == (4, 8)
        assert feats.dtype == np.float32

    def test_class_separation(self):
        labels = np.repeat([0, 1], 200)
        feats = make_features(labels, n_features=16, seed=0,
                              class_separation=3.0, noise=0.5)
        c0 = feats[labels == 0].mean(axis=0)
        c1 = feats[labels == 1].mean(axis=0)
        assert np.linalg.norm(c0 - c1) > 1.0

    def test_invalid_feature_count(self):
        with pytest.raises(ValueError):
            make_features(np.array([0, 1]), n_features=0)


class TestSplit:
    def test_masks_partition_all_vertices(self):
        train, val, test = train_val_test_split(100, seed=0)
        total = train.astype(int) + val.astype(int) + test.astype(int)
        assert np.all(total == 1)

    def test_fractions_respected(self):
        train, val, test = train_val_test_split(1000, train_frac=0.5,
                                                val_frac=0.25, seed=0)
        assert abs(train.sum() - 500) <= 1
        assert abs(val.sum() - 250) <= 1

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, train_frac=0.0)
        with pytest.raises(ValueError):
            train_val_test_split(10, train_frac=0.8, val_frac=0.3)


class TestNodeData:
    def test_make_node_data_valid(self, graph):
        data = make_node_data(graph, n_features=6, n_classes=4, seed=0)
        data.validate()
        assert data.n_vertices == 120
        assert data.n_features == 6
        assert data.n_classes == 4

    def test_validate_catches_overlap(self, graph):
        data = make_node_data(graph, 4, 3, seed=0)
        data.val_mask[:] = data.train_mask
        with pytest.raises(ValueError):
            data.validate()

    def test_validate_catches_length_mismatch(self, graph):
        data = make_node_data(graph, 4, 3, seed=0)
        data.labels = data.labels[:-1]
        with pytest.raises(ValueError):
            data.validate()

    def test_permuted_roundtrip(self, graph):
        data = make_node_data(graph, 5, 3, seed=0)
        perm = np.random.default_rng(0).permutation(data.n_vertices)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        back = data.permuted(perm).permuted(inv)
        np.testing.assert_array_equal(back.labels, data.labels)
        np.testing.assert_allclose(back.features, data.features)
        np.testing.assert_array_equal(back.train_mask, data.train_mask)

    def test_permuted_moves_rows_consistently(self, graph):
        data = make_node_data(graph, 5, 3, seed=0)
        perm = np.random.default_rng(1).permutation(data.n_vertices)
        permuted = data.permuted(perm)
        # Vertex v ends up at position perm[v] with all its attributes.
        v = 17
        np.testing.assert_allclose(permuted.features[perm[v]],
                                   data.features[v])
        assert permuted.labels[perm[v]] == data.labels[v]
        assert permuted.train_mask[perm[v]] == data.train_mask[v]
