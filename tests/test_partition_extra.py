"""Tests for the spectral, label-propagation and hypergraph partitioners."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (community_ring_graph, erdos_renyi_graph, grid_graph,
                          degrees)
from repro.partition import (ColumnNetHypergraph, HypergraphPartitioner,
                             LabelPropagationPartitioner, PARTITIONERS,
                             SpectralPartitioner, communication_volumes_1d,
                             edgecut, fiedler_vector, get_partitioner,
                             label_propagation_sweep, load_imbalance,
                             part_sizes)


@pytest.fixture(scope="module")
def community_graph():
    return community_ring_graph(96, avg_degree=10, n_communities=8,
                                p_external=0.05, seed=3)


@pytest.fixture(scope="module")
def irregular_graph():
    return erdos_renyi_graph(80, avg_degree=6, seed=7)


def _check_valid_partition(result, n, nparts):
    assert result.parts.shape == (n,)
    assert result.nparts == nparts
    assert result.parts.min() >= 0 and result.parts.max() < nparts
    assert np.all(result.part_sizes() > 0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    @pytest.mark.parametrize("name", ["spectral", "label_prop", "hypergraph"])
    def test_new_partitioners_registered(self, name):
        partitioner = get_partitioner(name, seed=1)
        assert partitioner.name == name or name in ("label_prop",)

    def test_registry_contains_all_schemes(self):
        for name in ("block", "random", "metis_like", "gvb", "spectral",
                     "label_prop", "hypergraph"):
            assert name in PARTITIONERS


# ----------------------------------------------------------------------
# Spectral
# ----------------------------------------------------------------------
class TestFiedlerVector:
    def test_sign_structure_on_two_cliques(self):
        """On two cliques joined by one edge, the Fiedler vector separates
        them by sign."""
        n = 20
        dense = np.zeros((n, n))
        dense[:10, :10] = 1.0
        dense[10:, 10:] = 1.0
        np.fill_diagonal(dense, 0.0)
        dense[9, 10] = dense[10, 9] = 1.0
        vec = fiedler_vector(sp.csr_matrix(dense), seed=0)
        signs_a = np.sign(vec[:10])
        signs_b = np.sign(vec[10:])
        assert len(set(signs_a[signs_a != 0])) == 1
        assert len(set(signs_b[signs_b != 0])) == 1
        assert signs_a[0] != signs_b[0]

    def test_large_graph_uses_iterative_path(self):
        graph = erdos_renyi_graph(150, avg_degree=6, seed=0)
        vec = fiedler_vector(graph, seed=0)
        assert vec.shape == (150,)
        assert np.all(np.isfinite(vec))

    def test_tiny_graph(self):
        assert fiedler_vector(sp.csr_matrix((1, 1))).shape == (1,)


class TestSpectralPartitioner:
    @pytest.mark.parametrize("nparts", [2, 3, 4, 8])
    def test_produces_valid_partitions(self, community_graph, nparts):
        result = SpectralPartitioner(seed=0).partition(community_graph, nparts)
        _check_valid_partition(result, community_graph.shape[0], nparts)

    def test_balance_is_respected(self, community_graph):
        result = SpectralPartitioner(balance_factor=1.1, seed=0).partition(
            community_graph, 4)
        sizes = result.part_sizes()
        assert load_imbalance(sizes) <= 1.35  # small slack for fix-ups

    def test_beats_random_on_community_graph(self, community_graph):
        spectral = SpectralPartitioner(seed=0).partition(community_graph, 8)
        random = get_partitioner("random", seed=0).partition(community_graph, 8)
        assert spectral.stats["edgecut"] < random.stats["edgecut"]

    def test_single_part(self, community_graph):
        result = SpectralPartitioner(seed=0).partition(community_graph, 1)
        assert np.all(result.parts == 0)

    def test_refine_flag(self, irregular_graph):
        raw = SpectralPartitioner(refine=False, seed=0).partition(
            irregular_graph, 4)
        refined = SpectralPartitioner(refine=True, seed=0).partition(
            irregular_graph, 4)
        assert refined.stats["edgecut"] <= raw.stats["edgecut"] * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectralPartitioner(balance_factor=0.9)

    def test_stats_filled(self, community_graph):
        result = SpectralPartitioner(seed=0).partition(community_graph, 4)
        for key in ("edgecut", "total_volume", "max_send_volume"):
            assert key in result.stats


# ----------------------------------------------------------------------
# Label propagation
# ----------------------------------------------------------------------
class TestLabelPropagation:
    def test_sweep_respects_balance(self, community_graph):
        n = community_graph.shape[0]
        nparts = 6
        rng = np.random.default_rng(0)
        parts = rng.integers(0, nparts, size=n)
        cap = 1.2 * n / nparts
        label_propagation_sweep(community_graph.tocsr().astype(float), parts,
                                nparts, np.ones(n), cap, rng)
        assert part_sizes(parts, nparts).max() <= int(np.ceil(cap))

    @pytest.mark.parametrize("init", ["block", "random"])
    def test_produces_valid_partitions(self, community_graph, init):
        partitioner = LabelPropagationPartitioner(init=init, seed=2)
        result = partitioner.partition(community_graph, 8)
        _check_valid_partition(result, community_graph.shape[0], 8)
        assert result.stats["propagation_sweeps"] >= 1

    def test_improves_over_random_start(self, community_graph):
        random = get_partitioner("random", seed=2).partition(community_graph, 8)
        lp = LabelPropagationPartitioner(init="random", seed=2).partition(
            community_graph, 8)
        assert lp.stats["edgecut"] <= random.stats["edgecut"]

    def test_volume_objective_reduces_max_send(self, irregular_graph):
        plain = LabelPropagationPartitioner(seed=3).partition(irregular_graph, 8)
        vol = LabelPropagationPartitioner(volume_objective=True, seed=3
                                          ).partition(irregular_graph, 8)
        assert vol.stats["max_send_volume"] <= plain.stats["max_send_volume"]

    def test_respects_balance_constraint(self, community_graph):
        result = LabelPropagationPartitioner(balance_factor=1.1, seed=1
                                             ).partition(community_graph, 6)
        imbalance = load_imbalance(result.part_sizes())
        assert imbalance <= 1.25

    def test_single_part(self, community_graph):
        result = LabelPropagationPartitioner(seed=0).partition(community_graph, 1)
        assert np.all(result.parts == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelPropagationPartitioner(balance_factor=0.5)
        with pytest.raises(ValueError):
            LabelPropagationPartitioner(max_iterations=0)
        with pytest.raises(ValueError):
            LabelPropagationPartitioner(init="bfs")


# ----------------------------------------------------------------------
# Column-net hypergraph model
# ----------------------------------------------------------------------
class TestColumnNetHypergraph:
    def test_pins_include_owner(self, irregular_graph):
        hg = ColumnNetHypergraph(irregular_graph)
        for j in (0, 5, 17):
            assert j in hg.pins(j)

    def test_nets_of_vertex_includes_own_net(self, irregular_graph):
        hg = ColumnNetHypergraph(irregular_graph)
        assert 3 in hg.nets_of(3)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            ColumnNetHypergraph(sp.csr_matrix((3, 4)))

    def test_queries_require_reset(self, irregular_graph):
        hg = ColumnNetHypergraph(irregular_graph)
        with pytest.raises(RuntimeError):
            hg.connectivity_cut()

    def test_connectivity_cut_equals_graph_volume_metric(self, irregular_graph):
        """connectivity-1 == the 1D communication volume computed from the
        graph side — the core identity of the column-net model."""
        n = irregular_graph.shape[0]
        for nparts, seed in [(4, 0), (8, 1), (5, 2)]:
            rng = np.random.default_rng(seed)
            parts = rng.integers(0, nparts, size=n)
            hg = ColumnNetHypergraph(irregular_graph)
            hg.reset(parts, nparts)
            vol = communication_volumes_1d(irregular_graph, parts, nparts)
            assert hg.connectivity_cut() == vol.total
            np.testing.assert_array_equal(hg.send_volumes(), vol.send_volume)

    def test_move_gain_matches_recomputation(self, irregular_graph):
        n = irregular_graph.shape[0]
        nparts = 6
        rng = np.random.default_rng(4)
        parts = rng.integers(0, nparts, size=n)
        hg = ColumnNetHypergraph(irregular_graph)
        hg.reset(parts, nparts)
        for _ in range(25):
            v = int(rng.integers(0, n))
            dest = int(rng.integers(0, nparts))
            before = hg.connectivity_cut()
            gain = hg.move_gain(v, dest)
            hg.apply_move(v, dest)
            after = hg.connectivity_cut()
            assert before - after == gain

    def test_apply_move_updates_parts(self, irregular_graph):
        hg = ColumnNetHypergraph(irregular_graph)
        hg.reset(np.zeros(irregular_graph.shape[0], dtype=np.int64), 2)
        hg.apply_move(0, 1)
        assert hg.parts[0] == 1
        hg.apply_move(0, 1)  # no-op
        assert hg.parts[0] == 1


class TestHypergraphPartitioner:
    def test_produces_valid_partitions(self, community_graph):
        result = HypergraphPartitioner(seed=0).partition(community_graph, 8)
        _check_valid_partition(result, community_graph.shape[0], 8)
        assert result.stats["fm_passes"] >= 1

    def test_reduces_volume_versus_block_start(self, irregular_graph):
        block = get_partitioner("block").partition(irregular_graph, 8)
        hyper = HypergraphPartitioner(seed=0).partition(irregular_graph, 8)
        assert hyper.stats["total_volume"] <= block.stats["total_volume"]

    def test_respects_balance(self, community_graph):
        result = HypergraphPartitioner(balance_factor=1.1, seed=0).partition(
            community_graph, 6)
        assert load_imbalance(result.part_sizes()) <= 1.25

    def test_bottleneck_weight_accepted(self, irregular_graph):
        result = HypergraphPartitioner(bottleneck_weight=2.0, seed=0).partition(
            irregular_graph, 6)
        _check_valid_partition(result, irregular_graph.shape[0], 6)

    def test_single_part(self, community_graph):
        result = HypergraphPartitioner(seed=0).partition(community_graph, 1)
        assert np.all(result.parts == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HypergraphPartitioner(balance_factor=0.8)
        with pytest.raises(ValueError):
            HypergraphPartitioner(max_passes=0)
        with pytest.raises(ValueError):
            HypergraphPartitioner(bottleneck_weight=-1)
        with pytest.raises(ValueError):
            HypergraphPartitioner(init="greedy")


# ----------------------------------------------------------------------
# End-to-end: new partitioners drive distributed training
# ----------------------------------------------------------------------
class TestTrainingIntegration:
    @pytest.mark.parametrize("name", ["spectral", "label_prop", "hypergraph"])
    def test_train_distributed_accepts_new_partitioners(self, name):
        from repro import DistTrainConfig, load_dataset, train_distributed
        dataset = load_dataset("reddit", scale=0.05, n_features=8, n_classes=3,
                               seed=0)
        config = DistTrainConfig(n_ranks=4, partitioner=name, epochs=2,
                                 machine="laptop", seed=0)
        result = train_distributed(dataset, config, eval_every=0)
        assert result.avg_epoch_time_s > 0
        assert np.isfinite(result.final_loss)
