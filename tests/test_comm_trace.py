"""Tests for Chrome-trace export and the overlap analysis."""

import json

import numpy as np
import pytest

from repro.comm import (chrome_trace, make_communicator, overlap_analysis,
                        save_chrome_trace)
from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        spmm_1d_oblivious, spmm_1d_sparsity_aware)
from repro.graphs import erdos_renyi_graph, gcn_normalize


@pytest.fixture()
def run_sa():
    """A small sparsity-aware SpMM run with its communicator."""
    graph = gcn_normalize(erdos_renyi_graph(32, avg_degree=6, seed=1))
    dist = BlockRowDistribution.uniform(32, 4)
    matrix = DistSparseMatrix(graph, dist)
    h = np.random.default_rng(0).normal(size=(32, 4))
    dense = DistDenseMatrix.from_global(h, dist)
    comm = make_communicator(4, machine="perlmutter")
    spmm_1d_sparsity_aware(matrix, dense, comm)
    return comm


class TestChromeTrace:
    def test_one_slice_per_message_plus_metadata(self, run_sa):
        events = chrome_trace(run_sa)
        slices = [e for e in events if e.get("ph") == "X"]
        metadata = [e for e in events if e.get("ph") == "M"]
        assert len(metadata) == run_sa.nranks
        assert len(slices) == len(run_sa.events)

    def test_slices_carry_volume_and_destination(self, run_sa):
        slices = [e for e in chrome_trace(run_sa) if e.get("ph") == "X"]
        total_bytes = sum(e["args"]["bytes"] for e in slices)
        assert total_bytes == run_sa.events.total_bytes()
        for entry in slices:
            assert entry["dur"] > 0
            assert 0 <= entry["tid"] < run_sa.nranks
            assert 0 <= entry["args"]["dst"] < run_sa.nranks

    def test_sender_slices_do_not_overlap(self, run_sa):
        slices = [e for e in chrome_trace(run_sa) if e.get("ph") == "X"]
        by_sender = {}
        for entry in slices:
            by_sender.setdefault(entry["tid"], []).append(entry)
        for entries in by_sender.values():
            entries.sort(key=lambda e: e["ts"])
            for a, b in zip(entries, entries[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_save_writes_valid_json(self, run_sa, tmp_path):
        path = save_chrome_trace(run_sa, str(tmp_path / "traces" / "run.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert "traceEvents" in payload
        assert len(payload["traceEvents"]) > 0

    def test_empty_run(self, tmp_path):
        comm = make_communicator(2)
        events = chrome_trace(comm)
        assert all(e["ph"] == "M" for e in events)


class TestOverlapAnalysis:
    def test_bounds_are_consistent(self, run_sa):
        report = overlap_analysis(run_sa)
        assert report.perfect_overlap_s <= report.measured_s + 1e-12
        assert report.potential_speedup >= 1.0
        assert report.measured_s == pytest.approx(run_sa.timeline.elapsed())
        d = report.as_dict()
        assert d["potential_speedup"] == pytest.approx(report.potential_speedup)

    def test_oblivious_run_is_communication_dominated(self):
        """For the CAGNET baseline on several ranks, communication exceeds
        compute on the bottleneck rank, so perfect overlap is bounded by the
        communication term."""
        graph = gcn_normalize(erdos_renyi_graph(48, avg_degree=8, seed=2))
        dist = BlockRowDistribution.uniform(48, 8)
        matrix = DistSparseMatrix(graph, dist)
        h = np.random.default_rng(1).normal(size=(48, 32))
        dense = DistDenseMatrix.from_global(h, dist)
        comm = make_communicator(8, machine="perlmutter")
        spmm_1d_oblivious(matrix, dense, comm)
        report = overlap_analysis(comm)
        assert report.communication_s > report.compute_s
        assert report.perfect_overlap_s >= report.communication_s * 0.99

    def test_no_communication_single_rank(self):
        comm = make_communicator(1)
        comm.charge_spmm(0, 1e6)
        report = overlap_analysis(comm)
        assert report.communication_s == 0.0
        assert report.potential_speedup == pytest.approx(1.0)
