"""Compiled-execution coverage: persistent plans vs one-shot dispatch.

The contract under test (see ``docs/performance.md``):

* for every (variant x backend) pair, the compiled operator is **bitwise
  identical** to the uncompiled compile-and-run-once path;
* repeated calls reuse the plan's workspaces with no stale-state leakage
  between epochs (calling with B after A gives exactly what a fresh run
  on B gives, and re-calling with A restores A's result bit for bit);
* float32 plans produce float32 results within single-precision tolerance
  of the float64 run, at exactly half the exchanged volume;
* the process backend's plan cache replays repeated same-shape exchanges
  correctly, and invalidates itself when an arena regrows.
"""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, Dist2DSparseMatrix, Grid2D,
                        ProcessGrid, available_spmm_variants, spmm)
from repro.core.engine import CompiledSpmm, DenseSpec, compile as compile_spmm
from repro.core.memory import measure_dist_matrix_bytes
from repro.graphs import gcn_normalize
from repro.graphs.generators import erdos_renyi_graph

N, F, P = 48, 6, 4
BACKENDS = ("sim", "threaded", "process")
VARIANTS = [("1d", "oblivious"), ("1d", "sparsity_aware"),
            ("1.5d", "oblivious"), ("1.5d", "sparsity_aware"),
            ("2d", "oblivious"), ("2d", "sparsity_aware")]


@pytest.fixture(scope="module")
def problem():
    adj = gcn_normalize(erdos_renyi_graph(N, avg_degree=6, seed=11))
    rng = np.random.default_rng(11)
    h_a = rng.normal(size=(N, F))
    h_b = rng.normal(size=(N, F))
    return adj, h_a, h_b


def _operands(algorithm, adj, dtype=np.float64):
    """(matrix, grid, wrap(h) -> operand, unwrap(result) -> global)."""
    if algorithm == "2d":
        grid = Grid2D(2, 2)
        matrix = Dist2DSparseMatrix.uniform(adj, grid, dtype=dtype)
        return (matrix, grid,
                lambda h: np.asarray(h, dtype=dtype),
                lambda z: np.array(z, copy=True))
    grid = ProcessGrid(P, 2) if algorithm == "1.5d" else None
    nblocks = grid.nrows if grid is not None else P
    dist = BlockRowDistribution.uniform(N, nblocks)
    matrix = DistSparseMatrix(adj, dist, dtype=dtype)
    return (matrix, grid,
            lambda h: DistDenseMatrix.from_global(h, dist, dtype=dtype),
            lambda z: z.to_global())


class TestCompiledMatchesUncompiled:
    """Bit-identity + repeated-call reuse on every (variant x backend)."""

    @pytest.mark.parametrize("algorithm,mode", VARIANTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_and_no_stale_workspace(self, problem, algorithm,
                                                  mode, backend):
        adj, h_a, h_b = problem
        matrix, grid, wrap, unwrap = _operands(algorithm, adj)
        sparsity_aware = mode == "sparsity_aware"

        # Reference: the uncompiled path, one fresh run per operand.
        with make_communicator(P, backend=backend) as comm:
            ref_a = unwrap(spmm(matrix, wrap(h_a), comm, algorithm=algorithm,
                                sparsity_aware=sparsity_aware, grid=grid))
            ref_b = unwrap(spmm(matrix, wrap(h_b), comm, algorithm=algorithm,
                                sparsity_aware=sparsity_aware, grid=grid))

        # Compiled: one plan, three calls (A, B, A again).
        with make_communicator(P, backend=backend) as comm:
            op = compile_spmm(matrix, DenseSpec(width=F), comm,
                              algorithm=algorithm,
                              sparsity_aware=sparsity_aware, grid=grid)
            got_a = unwrap(op(wrap(h_a)))
            got_b = unwrap(op(wrap(h_b)))
            got_a2 = unwrap(op(wrap(h_a)))

        np.testing.assert_array_equal(got_a, ref_a)
        np.testing.assert_array_equal(got_b, ref_b)
        np.testing.assert_array_equal(got_a2, ref_a)

    @pytest.mark.parametrize("algorithm,mode", VARIANTS)
    def test_same_event_stream_and_sim_timing(self, problem, algorithm, mode):
        """Compiled and uncompiled runs charge the identical simulated time
        and communication volume — the plan only removes host-side work."""
        adj, h_a, _ = problem
        matrix, grid, wrap, _ = _operands(algorithm, adj)
        sparsity_aware = mode == "sparsity_aware"

        with make_communicator(P, backend="sim") as comm:
            spmm(matrix, wrap(h_a), comm, algorithm=algorithm,
                 sparsity_aware=sparsity_aware, grid=grid)
            spmm(matrix, wrap(h_a), comm, algorithm=algorithm,
                 sparsity_aware=sparsity_aware, grid=grid)
            t_ref = comm.elapsed()
            bytes_ref = comm.events.total_bytes()
            msgs_ref = comm.events.message_count()

        with make_communicator(P, backend="sim") as comm:
            op = compile_spmm(matrix, DenseSpec(width=F), comm,
                              algorithm=algorithm,
                              sparsity_aware=sparsity_aware, grid=grid)
            op(wrap(h_a))
            op(wrap(h_a))
            assert comm.elapsed() == t_ref
            assert comm.events.total_bytes() == bytes_ref
            assert comm.events.message_count() == msgs_ref


class TestWorkspaceReuse:
    def test_output_workspace_is_reused_across_calls(self, problem):
        adj, h_a, h_b = problem
        matrix, _, wrap, _ = _operands("1d", adj)
        with make_communicator(P, backend="sim") as comm:
            op = compile_spmm(matrix, DenseSpec(width=F), comm,
                              algorithm="1d")
            z1 = op(wrap(h_a))
            blocks1 = [z1.block(i) for i in range(P)]
            z2 = op(wrap(h_b))
            for i in range(P):
                assert z2.block(i) is blocks1[i], \
                    "compiled operator must reuse its output workspace"
        assert op.calls == 2

    def test_result_is_a_view_until_next_call(self, problem):
        """The documented lifetime rule: a result is clobbered by the next
        call, so epoch loops must consume (or copy) it first."""
        adj, h_a, h_b = problem
        matrix, _, wrap, _ = _operands("1d", adj)
        with make_communicator(P, backend="sim") as comm:
            op = compile_spmm(matrix, DenseSpec(width=F), comm,
                              algorithm="1d")
            z1 = op(wrap(h_a))
            kept = z1.to_global().copy()
            op(wrap(h_b))
            assert not np.array_equal(z1.to_global(), kept), \
                "the next call is expected to overwrite the workspace"

    def test_operand_validation(self, problem):
        adj, h_a, _ = problem
        matrix, _, wrap, _ = _operands("1d", adj)
        with make_communicator(P, backend="sim") as comm:
            op = compile_spmm(matrix, DenseSpec(width=F), comm,
                              algorithm="1d")
            wide = DistDenseMatrix.from_global(
                np.zeros((N, F + 1)), matrix.dist)
            with pytest.raises(ValueError, match="width"):
                op(wide)
            f32 = DistDenseMatrix.from_global(
                np.zeros((N, F), dtype=np.float32), matrix.dist,
                dtype=np.float32)
            with pytest.raises(ValueError, match="dtype"):
                op(f32)
            other = DistDenseMatrix.from_global(
                np.zeros((N, F)), BlockRowDistribution([N - 1, 1, 0, 0]))
            with pytest.raises(ValueError, match="distribution"):
                op(other)

    def test_int_width_spec_and_repr(self, problem):
        adj, _, _ = problem
        matrix, _, _, _ = _operands("1d", adj)
        with make_communicator(P, backend="sim") as comm:
            op = compile_spmm(matrix, F, comm, algorithm="1d")
            assert isinstance(op, CompiledSpmm)
            assert op.spec == DenseSpec(width=F)
            assert op.algorithm == "1d"
            assert op.mode == "sparsity_aware"

    def test_dense_spec_validation(self):
        with pytest.raises(ValueError, match="floating"):
            DenseSpec(width=4, dtype=np.int64)
        with pytest.raises(ValueError, match="non-negative"):
            DenseSpec(width=-1)
        assert DenseSpec(width=np.int64(3)).width == 3


class TestFloat32:
    @pytest.mark.parametrize("algorithm,mode", VARIANTS)
    def test_float32_tolerance_and_dtype(self, problem, algorithm, mode):
        adj, h_a, _ = problem
        sparsity_aware = mode == "sparsity_aware"
        m64, grid, wrap64, unwrap = _operands(algorithm, adj)
        m32, _, wrap32, _ = _operands(algorithm, adj, dtype=np.float32)
        with make_communicator(P, backend="sim") as comm:
            ref = unwrap(spmm(m64, wrap64(h_a), comm, algorithm=algorithm,
                              sparsity_aware=sparsity_aware, grid=grid))
        with make_communicator(P, backend="sim") as comm:
            op = compile_spmm(m32, DenseSpec(width=F, dtype=np.float32),
                              comm, algorithm=algorithm,
                              sparsity_aware=sparsity_aware, grid=grid)
            got = unwrap(op(wrap32(h_a.astype(np.float32))))
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, rtol=2e-4, atol=2e-5)

    def test_float32_halves_exchanged_volume(self, problem):
        adj, h_a, _ = problem
        volumes = {}
        for dtype in (np.float64, np.float32):
            matrix, _, wrap, _ = _operands("1d", adj, dtype=dtype)
            with make_communicator(P, backend="sim") as comm:
                op = compile_spmm(matrix, DenseSpec(width=F, dtype=dtype),
                                  comm, algorithm="1d")
                op(wrap(h_a.astype(dtype)))
                volumes[np.dtype(dtype).name] = comm.events.total_bytes()
        assert volumes["float64"] > 0
        assert volumes["float32"] * 2 == volumes["float64"]

    def test_float32_training_tracks_float64(self, problem):
        from repro.core import DistTrainConfig, train_distributed
        from repro.graphs import load_dataset
        ds = load_dataset("protein", scale=0.05, n_features=10, n_classes=3,
                          seed=3)
        losses = {}
        for dtype in ("float64", "float32"):
            cfg = DistTrainConfig(n_ranks=4, epochs=3, partitioner="gvb",
                                  dtype=dtype)
            result = train_distributed(ds, cfg, eval_every=0)
            losses[dtype] = np.array([h.loss for h in result.history])
            assert result.model.dtype == np.dtype(dtype)
        np.testing.assert_allclose(losses["float32"], losses["float64"],
                                   rtol=1e-4)


class TestDistGcnCompiledWiring:
    def test_model_compiles_one_plan_per_layer_width(self):
        from repro.core import DistTrainConfig, setup_distributed
        from repro.graphs import load_dataset
        ds = load_dataset("reddit", scale=0.05, n_features=12, n_classes=4,
                          seed=11)
        cfg = DistTrainConfig(n_ranks=4, epochs=1, partitioner=None)
        setup = setup_distributed(ds, cfg)
        with setup.comm:
            model = setup.model
            assert sorted(model._compiled) == sorted(set(model.layer_dims))
            calls_before = {w: op.calls for w, op in model._compiled.items()}
            model.train_epoch(0.05)
            # Every compiled operator ran at least once during the epoch
            # (forward f_0..f_{L-1}, backward f_1..f_L).
            for w, op in model._compiled.items():
                assert op.calls > calls_before[w], \
                    f"width-{w} operator was not used"

    def test_spmm_falls_back_for_unplanned_width(self):
        from repro.core import DistTrainConfig, setup_distributed
        from repro.graphs import load_dataset
        ds = load_dataset("reddit", scale=0.05, n_features=12, n_classes=4,
                          seed=11)
        cfg = DistTrainConfig(n_ranks=4, epochs=1, partitioner=None)
        setup = setup_distributed(ds, cfg)
        with setup.comm:
            model = setup.model
            odd_width = max(model.layer_dims) + 3
            dense = DistDenseMatrix.from_global(
                np.ones((model.dist.n, odd_width)), model.dist)
            z = model.spmm(dense)      # must not raise; uncompiled fallback
            assert z.width == odd_width


class TestLazyFullBlocks:
    def test_sparsity_aware_never_materializes_full(self, problem):
        adj, h_a, _ = problem
        matrix, _, wrap, _ = _operands("1d", adj)
        stats = measure_dist_matrix_bytes(matrix)
        assert stats["full_blocks_materialized"] == 0
        assert stats["full_extra_bytes"] == 0
        with make_communicator(P, backend="sim") as comm:
            spmm(matrix, wrap(h_a), comm, algorithm="1d",
                 sparsity_aware=True)
        stats = measure_dist_matrix_bytes(matrix)
        assert stats["full_blocks_materialized"] == 0, \
            "the sparsity-aware path must never pay for full-width blocks"

    def test_oblivious_materializes_lazily_and_shares_buffers(self, problem):
        adj, h_a, _ = problem
        matrix, _, wrap, _ = _operands("1d", adj)
        before = measure_dist_matrix_bytes(matrix)
        with make_communicator(P, backend="sim") as comm:
            spmm(matrix, wrap(h_a), comm, algorithm="1d",
                 sparsity_aware=False)
        after = measure_dist_matrix_bytes(matrix)
        assert after["full_blocks_materialized"] > 0
        # The widened blocks share value/indptr buffers with the compacted
        # ones: the only extra cost is the remapped column-index array.
        extra = after["full_extra_bytes"]
        assert 0 < extra <= before["compact_bytes"]

    def test_full_equals_direct_slice(self, problem):
        import scipy.sparse as sp
        adj, _, _ = problem
        dist = BlockRowDistribution.uniform(N, P)
        matrix = DistSparseMatrix(adj, dist)
        for i in range(P):
            for j in range(P):
                info = matrix.block(i, j)
                lo, hi = dist.block_range(j)
                ilo, ihi = dist.block_range(i)
                direct = adj[ilo:ihi, lo:hi].toarray()
                np.testing.assert_array_equal(info.full.toarray(), direct)
                assert info.full.shape == (ihi - ilo, hi - lo)


class TestProcessPlanCache:
    def test_repeated_exchange_hits_cache_and_stays_correct(self):
        rng = np.random.default_rng(0)
        with make_communicator(3, backend="process") as comm:
            for round_ in range(4):
                send = [[rng.normal(size=(5, 2)) if i != j else None
                         for j in range(3)] for i in range(3)]
                recv = comm.alltoallv(send)
                for i in range(3):
                    for j in range(3):
                        if i != j:
                            np.testing.assert_array_equal(recv[i][j],
                                                          send[j][i])
                assert len(comm._plan_cache) == 1
                entry = next(iter(comm._plan_cache.values()))
                assert entry.primed
                if round_ == 0:
                    pid = entry.pid
                else:
                    assert entry.pid == pid, "same shape must reuse the plan"

    def test_arena_growth_invalidates_cached_plan(self):
        rng = np.random.default_rng(1)
        with make_communicator(2, backend="process") as comm:
            small = [[None, rng.normal(size=(4, 2))],
                     [rng.normal(size=(4, 2)), None]]
            comm.alltoallv(small)
            assert len(comm._plan_cache) == 1
            # A much larger same-collective payload forces the send arenas
            # to regrow, which must purge the stale small-shape plan.
            big = [[None, rng.normal(size=(4096, 8))],
                   [rng.normal(size=(4096, 8)), None]]
            recv = comm.alltoallv(big)
            np.testing.assert_array_equal(recv[0][1], big[1][0])
            # And the small shape still round-trips after re-planning.
            recv = comm.alltoallv(small)
            np.testing.assert_array_equal(recv[1][0], small[0][1])

    def test_broadcast_and_allreduce_replay(self):
        rng = np.random.default_rng(2)
        with make_communicator(3, backend="process") as comm:
            for _ in range(3):
                value = rng.normal(size=(7, 3))
                out = comm.broadcast(value.copy(), root=1)
                for z in out:
                    np.testing.assert_array_equal(z, value)
                arrays = [rng.normal(size=(6,)) for _ in range(3)]
                red = comm.allreduce([a.copy() for a in arrays])
                expected = np.stack(arrays).sum(axis=0)
                for z in red:
                    np.testing.assert_array_equal(z, expected)
            assert {k[0] for k in comm._plan_cache} == {"bc", "ar"}

    def test_cache_is_bounded(self):
        from repro.comm.process import MAX_CACHED_PLANS
        with make_communicator(2, backend="process") as comm:
            for k in range(MAX_CACHED_PLANS + 8):
                comm.broadcast(np.ones(k + 1), root=0)
            assert len(comm._plan_cache) <= MAX_CACHED_PLANS

    def test_compiled_epoch_on_process_backend(self, problem):
        """End to end: a compiled operator driving the process backend's
        replay fast path repeatedly stays bit-identical to sim."""
        adj, h_a, h_b = problem
        matrix, _, wrap, unwrap = _operands("1d", adj)
        with make_communicator(P, backend="sim") as comm:
            ref_op = compile_spmm(matrix, DenseSpec(width=F), comm,
                                  algorithm="1d")
            refs = [unwrap(ref_op(wrap(h))) for h in (h_a, h_b, h_a)]
        with make_communicator(P, backend="process") as comm:
            op = compile_spmm(matrix, DenseSpec(width=F), comm,
                              algorithm="1d")
            got = [unwrap(op(wrap(h))) for h in (h_a, h_b, h_a)]
            a2a_entries = [k for k in comm._plan_cache if k[0] == "a2a"]
            assert len(a2a_entries) == 1, \
                "all epochs must share one cached exchange plan"
        for g, r in zip(got, refs):
            np.testing.assert_array_equal(g, r)
