"""Tests for the dataset registry and .npz I/O."""

import numpy as np
import pytest

from repro.graphs import (DATASET_NAMES, PAPER_SPECS, dataset_summary,
                          load_dataset, load_dataset_file, load_partition,
                          save_dataset, save_partition)


class TestRegistry:
    def test_all_four_datasets_listed(self):
        assert set(DATASET_NAMES) == {"reddit", "amazon", "protein", "papers"}

    def test_paper_specs_match_table3(self):
        assert PAPER_SPECS["reddit"].vertices == 232_965
        assert PAPER_SPECS["papers"].edges == 3_231_371_744
        assert PAPER_SPECS["amazon"].features == 300
        assert PAPER_SPECS["protein"].labels == 24

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("reddit", scale=0.0)


class TestLoadDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loads_and_validates(self, name):
        ds = load_dataset(name, scale=0.05, n_features=8, n_classes=3, seed=0)
        ds.node_data.validate()
        assert ds.n_vertices == ds.adjacency.shape[0]
        assert ds.node_data.features.shape == (ds.n_vertices, 8)
        assert ds.spec is PAPER_SPECS[name]

    def test_deterministic(self):
        a = load_dataset("amazon", scale=0.05, seed=9)
        b = load_dataset("amazon", scale=0.05, seed=9)
        assert (a.adjacency != b.adjacency).nnz == 0
        np.testing.assert_allclose(a.node_data.features, b.node_data.features)

    def test_scale_changes_size(self):
        small = load_dataset("papers", scale=0.05, seed=0)
        large = load_dataset("papers", scale=0.2, seed=0)
        assert large.n_vertices > small.n_vertices

    def test_relative_character_preserved(self):
        datasets = {name: load_dataset(name, scale=0.3, seed=0)
                    for name in DATASET_NAMES}
        # Reddit densest, papers largest — as in Table 3.
        assert datasets["reddit"].avg_degree == max(
            d.avg_degree for d in datasets.values())
        assert datasets["papers"].n_vertices == max(
            d.n_vertices for d in datasets.values())

    def test_feature_label_defaults_follow_table3(self):
        ds = load_dataset("amazon", scale=0.1, seed=0)
        assert ds.n_features == 300
        assert ds.n_classes <= 24

    def test_permuted_consistency(self):
        ds = load_dataset("reddit", scale=0.05, n_features=6, n_classes=3,
                          seed=0)
        perm = np.random.default_rng(0).permutation(ds.n_vertices)
        permuted = ds.permuted(perm)
        assert permuted.nnz == ds.nnz
        # Degree of vertex v is preserved at its new position.
        deg_old = np.diff(ds.adjacency.indptr)
        deg_new = np.diff(permuted.adjacency.indptr)
        np.testing.assert_array_equal(deg_new[perm], deg_old)

    def test_dataset_summary_fields(self):
        ds = load_dataset("protein", scale=0.05, seed=0)
        row = dataset_summary(ds)
        for key in ("name", "vertices", "edges", "features", "labels",
                    "paper_vertices", "paper_edges"):
            assert key in row
        assert row["paper_vertices"] == PAPER_SPECS["protein"].vertices


class TestIO:
    def test_dataset_roundtrip(self, tmp_path):
        ds = load_dataset("reddit", scale=0.05, n_features=7, n_classes=3,
                          seed=1)
        path = save_dataset(ds, tmp_path / "reddit_small.npz")
        loaded = load_dataset_file(path)
        assert loaded.name == "reddit"
        assert (loaded.adjacency != ds.adjacency).nnz == 0
        np.testing.assert_allclose(loaded.node_data.features,
                                   ds.node_data.features)
        np.testing.assert_array_equal(loaded.node_data.labels,
                                      ds.node_data.labels)
        np.testing.assert_array_equal(loaded.node_data.test_mask,
                                      ds.node_data.test_mask)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_file(tmp_path / "nope.npz")

    def test_partition_roundtrip(self, tmp_path):
        parts = np.array([0, 1, 2, 1, 0], dtype=np.int64)
        path = save_partition(parts, 3, tmp_path / "parts.npz")
        loaded, nparts = load_partition(path)
        np.testing.assert_array_equal(loaded, parts)
        assert nparts == 3

    def test_partition_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_partition(tmp_path / "missing.npz")

    def test_partition_rejects_corrupt_range(self, tmp_path):
        path = save_partition(np.array([0, 5]), 3, tmp_path / "bad.npz")
        with pytest.raises(ValueError):
            load_partition(path)
