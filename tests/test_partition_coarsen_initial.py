"""Tests for the coarsening and initial-partitioning phases."""

import numpy as np
import pytest

from repro.graphs.generators import community_ring_graph, erdos_renyi_graph, grid_graph
from repro.partition.coarsen import (coarsen_graph, contract_graph,
                                     heavy_edge_matching)
from repro.partition.initial import fix_empty_parts, greedy_graph_growing


class TestMatching:
    def test_matching_is_symmetric_and_valid(self):
        adj = erdos_renyi_graph(60, avg_degree=5, seed=0).astype(float)
        rng = np.random.default_rng(0)
        match = heavy_edge_matching(adj, rng)
        for v, u in enumerate(match):
            assert match[u] == v  # symmetric
        # Matched pairs must be actual edges.
        for v, u in enumerate(match):
            if u != v:
                assert adj[v, u] != 0

    def test_matching_respects_weight_cap(self):
        adj = erdos_renyi_graph(40, avg_degree=5, seed=1).astype(float)
        rng = np.random.default_rng(0)
        weights = np.full(40, 3.0)
        match = heavy_edge_matching(adj, rng, vertex_weights=weights,
                                    max_vertex_weight=5.0)
        # Nothing can be matched: any pair would weigh 6 > 5.
        assert np.all(match == np.arange(40))

    def test_matching_is_maximal(self):
        """No edge may have both endpoints unmatched (greedy maximality)."""
        adj = erdos_renyi_graph(80, avg_degree=4, seed=3).astype(float)
        rng = np.random.default_rng(2)
        match = heavy_edge_matching(adj, rng)
        coo = adj.tocoo()
        for v, u in zip(coo.row, coo.col):
            if v < u:
                assert not (match[v] == v and match[u] == u), \
                    f"edge ({v}, {u}) has both endpoints unmatched"

    def test_isolated_pair_gets_matched(self):
        import scipy.sparse as sp
        dense = np.array([[0, 10.0], [10.0, 0]])
        adj = sp.csr_matrix(dense)
        match = heavy_edge_matching(adj, np.random.default_rng(0))
        assert match[0] == 1 and match[1] == 0


class TestContraction:
    def test_contract_halves_vertices(self):
        adj = grid_graph(6).astype(float)
        rng = np.random.default_rng(0)
        weights = np.ones(36)
        match = heavy_edge_matching(adj, rng)
        level = contract_graph(adj, match, weights)
        matched_pairs = sum(1 for v, u in enumerate(match) if u > v)
        assert level.n_vertices == 36 - matched_pairs
        # Total vertex weight is conserved.
        assert level.vertex_weights.sum() == pytest.approx(36.0)

    def test_contract_preserves_connectivity_weight(self):
        adj = grid_graph(4).astype(float)
        rng = np.random.default_rng(1)
        match = heavy_edge_matching(adj, rng)
        level = contract_graph(adj, match, np.ones(16))
        # Sum of coarse edge weights + contracted (self-loop) weight equals
        # the original total edge weight.
        contracted_weight = sum(adj[v, u] for v, u in enumerate(match) if u > v)
        assert level.adj.sum() / 2 + contracted_weight == \
            pytest.approx(adj.sum() / 2)

    def test_coarse_map_is_total(self):
        adj = erdos_renyi_graph(50, avg_degree=4, seed=2).astype(float)
        rng = np.random.default_rng(0)
        match = heavy_edge_matching(adj, rng)
        level = contract_graph(adj, match, np.ones(50))
        assert level.coarse_map.shape == (50,)
        assert level.coarse_map.min() == 0
        assert level.coarse_map.max() == level.n_vertices - 1


class TestCoarsenGraph:
    def test_hierarchy_shrinks(self):
        adj = community_ring_graph(300, avg_degree=8, n_communities=10, seed=0)
        levels = coarsen_graph(adj, target_vertices=50, seed=0)
        assert levels, "expected at least one coarsening level"
        sizes = [adj.shape[0]] + [lvl.n_vertices for lvl in levels]
        assert all(b < a for a, b in zip(sizes, sizes[1:]))

    def test_respects_target(self):
        adj = community_ring_graph(300, avg_degree=8, n_communities=10, seed=0)
        levels = coarsen_graph(adj, target_vertices=250, seed=0)
        assert levels[-1].n_vertices <= 300

    def test_no_levels_for_small_graph(self):
        adj = erdos_renyi_graph(30, avg_degree=3, seed=0)
        assert coarsen_graph(adj, target_vertices=64, seed=0) == []

    def test_invalid_target(self):
        adj = erdos_renyi_graph(30, avg_degree=3, seed=0)
        with pytest.raises(ValueError):
            coarsen_graph(adj, target_vertices=0)


class TestInitialPartition:
    def test_covers_all_vertices_and_parts(self):
        adj = community_ring_graph(200, avg_degree=8, n_communities=8, seed=0)
        parts = greedy_graph_growing(adj.astype(float), 8, seed=0)
        assert parts.shape == (200,)
        assert set(np.unique(parts)) == set(range(8))

    def test_reasonable_balance(self):
        adj = community_ring_graph(240, avg_degree=8, n_communities=8, seed=1)
        parts = greedy_graph_growing(adj.astype(float), 6, seed=0)
        sizes = np.bincount(parts, minlength=6)
        assert sizes.max() <= 2.5 * sizes.mean()

    def test_handles_disconnected_graph(self):
        import scipy.sparse as sp
        # Two disjoint paths.
        a = np.zeros((8, 8))
        for i in range(3):
            a[i, i + 1] = a[i + 1, i] = 1
        for i in range(4, 7):
            a[i, i + 1] = a[i + 1, i] = 1
        adj = sp.csr_matrix(a)
        parts = greedy_graph_growing(adj, 4, seed=0)
        assert set(np.unique(parts)) == set(range(4))

    def test_rejects_too_many_parts(self):
        adj = erdos_renyi_graph(10, avg_degree=2, seed=0)
        with pytest.raises(ValueError):
            greedy_graph_growing(adj.astype(float), 11, seed=0)

    def test_fix_empty_parts(self):
        adj = erdos_renyi_graph(20, avg_degree=3, seed=0)
        parts = np.zeros(20, dtype=np.int64)  # everything in part 0
        fixed = fix_empty_parts(adj, parts, 4)
        assert set(np.unique(fixed)) == set(range(4))

    def test_fix_empty_parts_noop_when_fine(self):
        adj = erdos_renyi_graph(12, avg_degree=3, seed=0)
        parts = np.arange(12) % 3
        fixed = fix_empty_parts(adj, parts, 3)
        np.testing.assert_array_equal(fixed, parts)
