"""Seeded determinism of the benchmark pipeline on the sim backend.

``scripts/record_baseline.py`` relies on the simulator being a pure
function of (dataset seed, config): future PRs diff their Figure-3 sweep
against ``BENCH_spmm.json`` cell by cell, so any nondeterminism in the
pipeline (partitioner tie-breaking, dict ordering, RNG reuse) would show
up as phantom perf regressions.  These tests pin that property: the same
seed must reproduce the identical BENCH-style row structure — every
simulated timing, volume and accuracy field — across repeated runs in one
process (wall-clock-derived fields, which only exist on the real
backends' rows and in the recorder's ``recorder_wall_s``, are exempt by
construction: sim rows contain none).
"""

import json
import pathlib

import numpy as np
import pytest

from repro.bench import figure3_1d_scaling
from repro.bench.harness import STANDARD_SCHEMES, run_single
from repro.core import DistTrainConfig, train_distributed
from repro.graphs import load_dataset

QUICK = dict(datasets=("reddit",), p_values=(2, 4), scale=0.05, epochs=1,
             backend="sim", seed=0)


def _assert_rows_identical(rows_a, rows_b):
    assert len(rows_a) == len(rows_b)
    for a, b in zip(rows_a, rows_b):
        assert set(a) == set(b), "row schemas must match"
        for key in a:
            va, vb = a[key], b[key]
            if isinstance(va, float):
                assert va == vb or (np.isnan(va) and np.isnan(vb)), \
                    f"{key}: {va!r} != {vb!r}"
            else:
                assert va == vb, f"{key}: {va!r} != {vb!r}"


class TestSimBackendDeterminism:
    def test_figure3_rows_identical_across_runs(self):
        first = figure3_1d_scaling(**QUICK)
        second = figure3_1d_scaling(**QUICK)
        assert len(first) >= 6  # 3 schemes x 2 process counts
        _assert_rows_identical(first, second)

    def test_rows_are_json_stable(self):
        """The exact serialized BENCH payload is reproducible."""
        dumps = [json.dumps(figure3_1d_scaling(**QUICK), sort_keys=True)
                 for _ in range(2)]
        assert dumps[0] == dumps[1]

    def test_run_single_deterministic_across_seeds_only(self):
        dataset = load_dataset("reddit", scale=0.05, seed=3)
        row_a = run_single(dataset, STANDARD_SCHEMES["SA+GVB"], 4, epochs=2,
                           seed=3)
        row_b = run_single(dataset, STANDARD_SCHEMES["SA+GVB"], 4, epochs=2,
                           seed=3)
        _assert_rows_identical([row_a], [row_b])
        # A different seed must actually change the (random) dataset run —
        # guarding against a seed that is silently ignored.
        other = run_single(load_dataset("reddit", scale=0.05, seed=4),
                           STANDARD_SCHEMES["SA+GVB"], 4, epochs=2, seed=4)
        assert other["final_loss"] != row_a["final_loss"]

    def test_training_internals_deterministic(self):
        """Timings, volumes and breakdowns — not just losses — repeat."""
        dataset = load_dataset("protein", scale=0.05, n_features=10,
                               n_classes=3, seed=1)
        config = DistTrainConfig(n_ranks=4, epochs=3, seed=1,
                                 partitioner="gvb", backend="sim")
        res_a = train_distributed(dataset, config, eval_every=0)
        res_b = train_distributed(dataset, config, eval_every=0)
        assert [h.loss for h in res_a.history] == \
            [h.loss for h in res_b.history]
        assert [h.epoch_time_s for h in res_a.history] == \
            [h.epoch_time_s for h in res_b.history]
        assert res_a.breakdown == res_b.breakdown
        assert res_a.comm_summary == res_b.comm_summary
        assert res_a.total_time_s == res_b.total_time_s


class TestBaselineRecorderContract:
    """The checked-in baseline file stays consistent with the recorder."""

    BASELINE = pathlib.Path(__file__).resolve().parents[1] / "BENCH_spmm.json"

    @pytest.fixture(scope="class")
    def payload(self):
        if not self.BASELINE.exists():
            pytest.skip("no BENCH_spmm.json baseline recorded")
        return json.loads(self.BASELINE.read_text())

    def test_baseline_schema(self, payload):
        assert payload["benchmark"] == "fig3_1d_scaling"
        assert payload["backend"] == "sim"
        assert payload["rows"], "baseline must contain rows"
        for row in payload["rows"]:
            assert "recorder_wall_s" not in row, \
                "wall-clock fields must stay out of the diffable rows"

    def test_baseline_rows_reproducible(self, payload):
        """Re-running one cell of the recorded sweep reproduces it exactly
        (the recorder is deterministic, so cell-level diffs are real)."""
        cfg = payload["config"]
        rows = figure3_1d_scaling(datasets=(payload["rows"][0]["dataset"],),
                                  p_values=(payload["rows"][0]["p"],),
                                  scale=cfg["scale"], epochs=cfg["epochs"],
                                  backend="sim", seed=cfg["seed"])
        recorded = [r for r in payload["rows"]
                    if r["dataset"] == payload["rows"][0]["dataset"]
                    and r["p"] == payload["rows"][0]["p"]
                    and r["scheme"] == rows[0]["scheme"]]
        assert recorded, "recorded baseline missing the probed cell"
        for key in ("epoch_time_s", "comm_total_MB_per_epoch", "final_loss"):
            assert rows[0][key] == pytest.approx(recorded[0][key], rel=1e-12)
