"""Integration tests: distributed training is numerically equivalent to the
single-process reference.

This is the reproduction of the paper's correctness claim (Section 6.2):
"we observed no change in accuracy apart from floating-point rounding
errors" between the sparsity-oblivious and sparsity-aware implementations.
We verify something stronger — every distributed variant (1D / 1.5D,
oblivious / sparsity-aware, with and without partitioning) produces the
same per-epoch losses and final accuracy as the reference GCN, up to
floating-point rounding; and every registered (algorithm, sparsity-mode)
SpMM variant produces **bitwise identical** ``Z = M H`` on the simulated,
the real threaded and the real multi-process communicator backends.
(The randomized cross-backend matrix lives in
``tests/test_comm_conformance.py``.)
"""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, Dist2DSparseMatrix, DistTrainConfig,
                        Grid2D, ProcessGrid, available_spmm_variants, spmm,
                        train_distributed)
from repro.gcn import ReferenceTrainConfig, train_reference
from repro.graphs import gcn_normalize, load_dataset
from repro.graphs.generators import erdos_renyi_graph

EPOCHS = 8
LR = 0.08


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("protein", scale=0.05, n_features=14, n_classes=4,
                        seed=7)


@pytest.fixture(scope="module")
def reference(dataset):
    return train_reference(
        dataset.adjacency, dataset.node_data,
        ReferenceTrainConfig(epochs=EPOCHS, learning_rate=LR, hidden=16,
                             n_layers=3, seed=0))


def run_variant(dataset, **kwargs):
    config = DistTrainConfig(epochs=EPOCHS, learning_rate=LR, hidden=16,
                             n_layers=3, seed=0, **kwargs)
    return train_distributed(dataset, config, eval_every=0)


VARIANTS = [
    pytest.param(dict(n_ranks=1, algorithm="1d", sparsity_aware=True,
                      partitioner=None), id="1d-sa-p1"),
    pytest.param(dict(n_ranks=4, algorithm="1d", sparsity_aware=True,
                      partitioner=None), id="1d-sa-p4"),
    pytest.param(dict(n_ranks=4, algorithm="1d", sparsity_aware=False,
                      partitioner=None), id="1d-oblivious-p4"),
    pytest.param(dict(n_ranks=6, algorithm="1d", sparsity_aware=True,
                      partitioner="metis_like"), id="1d-sa-metis-p6"),
    pytest.param(dict(n_ranks=6, algorithm="1d", sparsity_aware=True,
                      partitioner="gvb"), id="1d-sa-gvb-p6"),
    pytest.param(dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=True, partitioner=None), id="15d-sa-c2"),
    pytest.param(dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=False, partitioner=None),
                 id="15d-oblivious-c2"),
    pytest.param(dict(n_ranks=8, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=True, partitioner="gvb"),
                 id="15d-sa-gvb-c2-p8"),
    pytest.param(dict(n_ranks=16, algorithm="1.5d", replication_factor=4,
                      sparsity_aware=True, partitioner=None), id="15d-sa-c4"),
    pytest.param(dict(n_ranks=4, algorithm="1d", sparsity_aware=True,
                      partitioner="gvb", backend="threaded"),
                 id="1d-sa-gvb-threaded"),
    pytest.param(dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=True, partitioner=None,
                      backend="threaded"), id="15d-sa-c2-threaded"),
    pytest.param(dict(n_ranks=4, algorithm="1d", sparsity_aware=True,
                      partitioner="gvb", backend="process"),
                 id="1d-sa-gvb-process"),
    pytest.param(dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=True, partitioner=None,
                      backend="process"), id="15d-sa-c2-process"),
]


@pytest.mark.parametrize("variant", VARIANTS)
def test_loss_trajectory_matches_reference(dataset, reference, variant):
    result = run_variant(dataset, **variant)
    ref_losses = np.array([h.loss for h in reference.history])
    dist_losses = np.array([h.loss for h in result.history])
    np.testing.assert_allclose(dist_losses, ref_losses, rtol=1e-7, atol=1e-9)


@pytest.mark.parametrize("variant", VARIANTS[:4])
def test_test_accuracy_matches_reference(dataset, reference, variant):
    result = run_variant(dataset, **variant)
    assert result.test_accuracy == pytest.approx(reference.test_accuracy,
                                                 abs=1e-12)


def test_all_schemes_agree_with_each_other(dataset):
    """Cross-check the distributed variants directly against one another."""
    losses = {}
    for variant in [dict(n_ranks=4, algorithm="1d", sparsity_aware=True,
                         partitioner=None),
                    dict(n_ranks=4, algorithm="1d", sparsity_aware=False,
                         partitioner=None),
                    dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                         sparsity_aware=True, partitioner=None)]:
        key = (variant["algorithm"], variant["sparsity_aware"])
        losses[key] = run_variant(dataset, **variant).final_loss
    values = list(losses.values())
    assert max(values) - min(values) < 1e-8


class TestSpmmEngineBackendMatrix:
    """Every registered (algorithm, mode) variant, on every backend, equals
    the dense NumPy reference — and the backends agree bit for bit."""

    N, F, P = 48, 6, 4

    @pytest.fixture(scope="class")
    def problem(self):
        adj = gcn_normalize(erdos_renyi_graph(self.N, avg_degree=6, seed=11))
        rng = np.random.default_rng(11)
        h = rng.normal(size=(self.N, self.F))
        return adj, h, adj @ h

    def _operands(self, algorithm, adj, h):
        if algorithm == "2d":
            grid = Grid2D(2, 2)
            return Dist2DSparseMatrix.uniform(adj, grid), h, grid
        if algorithm == "1.5d":
            grid = ProcessGrid(self.P, 2)
            nblocks = grid.nrows
        else:
            grid, nblocks = None, self.P
        dist = BlockRowDistribution.uniform(self.N, nblocks)
        return (DistSparseMatrix(adj, dist),
                DistDenseMatrix.from_global(h, dist), grid)

    def test_registry_is_complete(self):
        assert available_spmm_variants() == [
            ("1.5d", "oblivious"), ("1.5d", "sparsity_aware"),
            ("1d", "oblivious"), ("1d", "sparsity_aware"),
            ("2d", "oblivious"), ("2d", "sparsity_aware"),
        ]

    @pytest.mark.parametrize("algorithm,mode", [
        ("1d", "oblivious"), ("1d", "sparsity_aware"),
        ("1.5d", "oblivious"), ("1.5d", "sparsity_aware"),
        ("2d", "oblivious"), ("2d", "sparsity_aware"),
    ])
    def test_variant_identical_across_backends(self, problem, algorithm, mode):
        adj, h, reference = problem
        matrix, dense, grid = self._operands(algorithm, adj, h)
        results = {}
        for backend in ("sim", "threaded", "process"):
            with make_communicator(self.P, backend=backend) as comm:
                z = spmm(matrix, dense, comm, algorithm=algorithm,
                         sparsity_aware=(mode == "sparsity_aware"), grid=grid)
            results[backend] = z if isinstance(z, np.ndarray) else z.to_global()
            np.testing.assert_allclose(results[backend], reference, atol=1e-10)
        np.testing.assert_array_equal(results["sim"], results["threaded"])
        np.testing.assert_array_equal(results["sim"], results["process"])

    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_engine_report_captures_timing_and_volume(self, problem, backend):
        from repro.core import SpmmEngine
        adj, h, reference = problem
        matrix, dense, _ = self._operands("1d", adj, h)
        comm = make_communicator(self.P, backend=backend)
        try:
            engine = SpmmEngine(comm, algorithm="1d", sparsity_aware=True)
            z, report = engine.run_with_report(matrix, dense)
        finally:
            comm.close()
        np.testing.assert_allclose(z.to_global(), reference, atol=1e-10)
        assert report.algorithm == "1d"
        assert report.mode == "sparsity_aware"
        assert report.backend == backend
        assert report.elapsed_s > 0.0
        assert report.comm_bytes > 0
        assert report.messages > 0
        assert engine.last_report is report
        d = report.as_dict()
        assert d["comm_MB"] == report.comm_bytes / 1e6


def test_accuracy_is_meaningful(dataset):
    """The synthetic dataset is learnable: a fully-trained reference model
    scores well above chance, so the equivalence checks above are not
    comparing degenerate models."""
    trained = train_reference(
        dataset.adjacency, dataset.node_data,
        ReferenceTrainConfig(epochs=80, learning_rate=0.1, seed=0))
    chance = 1.0 / dataset.node_data.n_classes
    assert trained.test_accuracy > chance + 0.1
