"""Integration tests: distributed training is numerically equivalent to the
single-process reference.

This is the reproduction of the paper's correctness claim (Section 6.2):
"we observed no change in accuracy apart from floating-point rounding
errors" between the sparsity-oblivious and sparsity-aware implementations.
We verify something stronger — every distributed variant (1D / 1.5D,
oblivious / sparsity-aware, with and without partitioning) produces the
same per-epoch losses and final accuracy as the reference GCN, up to
floating-point rounding.
"""

import numpy as np
import pytest

from repro.core import DistTrainConfig, train_distributed
from repro.gcn import ReferenceTrainConfig, train_reference
from repro.graphs import load_dataset

EPOCHS = 8
LR = 0.08


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("protein", scale=0.05, n_features=14, n_classes=4,
                        seed=7)


@pytest.fixture(scope="module")
def reference(dataset):
    return train_reference(
        dataset.adjacency, dataset.node_data,
        ReferenceTrainConfig(epochs=EPOCHS, learning_rate=LR, hidden=16,
                             n_layers=3, seed=0))


def run_variant(dataset, **kwargs):
    config = DistTrainConfig(epochs=EPOCHS, learning_rate=LR, hidden=16,
                             n_layers=3, seed=0, **kwargs)
    return train_distributed(dataset, config, eval_every=0)


VARIANTS = [
    pytest.param(dict(n_ranks=1, algorithm="1d", sparsity_aware=True,
                      partitioner=None), id="1d-sa-p1"),
    pytest.param(dict(n_ranks=4, algorithm="1d", sparsity_aware=True,
                      partitioner=None), id="1d-sa-p4"),
    pytest.param(dict(n_ranks=4, algorithm="1d", sparsity_aware=False,
                      partitioner=None), id="1d-oblivious-p4"),
    pytest.param(dict(n_ranks=6, algorithm="1d", sparsity_aware=True,
                      partitioner="metis_like"), id="1d-sa-metis-p6"),
    pytest.param(dict(n_ranks=6, algorithm="1d", sparsity_aware=True,
                      partitioner="gvb"), id="1d-sa-gvb-p6"),
    pytest.param(dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=True, partitioner=None), id="15d-sa-c2"),
    pytest.param(dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=False, partitioner=None),
                 id="15d-oblivious-c2"),
    pytest.param(dict(n_ranks=8, algorithm="1.5d", replication_factor=2,
                      sparsity_aware=True, partitioner="gvb"),
                 id="15d-sa-gvb-c2-p8"),
    pytest.param(dict(n_ranks=16, algorithm="1.5d", replication_factor=4,
                      sparsity_aware=True, partitioner=None), id="15d-sa-c4"),
]


@pytest.mark.parametrize("variant", VARIANTS)
def test_loss_trajectory_matches_reference(dataset, reference, variant):
    result = run_variant(dataset, **variant)
    ref_losses = np.array([h.loss for h in reference.history])
    dist_losses = np.array([h.loss for h in result.history])
    np.testing.assert_allclose(dist_losses, ref_losses, rtol=1e-7, atol=1e-9)


@pytest.mark.parametrize("variant", VARIANTS[:4])
def test_test_accuracy_matches_reference(dataset, reference, variant):
    result = run_variant(dataset, **variant)
    assert result.test_accuracy == pytest.approx(reference.test_accuracy,
                                                 abs=1e-12)


def test_all_schemes_agree_with_each_other(dataset):
    """Cross-check the distributed variants directly against one another."""
    losses = {}
    for variant in [dict(n_ranks=4, algorithm="1d", sparsity_aware=True,
                         partitioner=None),
                    dict(n_ranks=4, algorithm="1d", sparsity_aware=False,
                         partitioner=None),
                    dict(n_ranks=4, algorithm="1.5d", replication_factor=2,
                         sparsity_aware=True, partitioner=None)]:
        key = (variant["algorithm"], variant["sparsity_aware"])
        losses[key] = run_variant(dataset, **variant).final_loss
    values = list(losses.values())
    assert max(values) - min(values) < 1e-8


def test_accuracy_is_meaningful(dataset):
    """The synthetic dataset is learnable: a fully-trained reference model
    scores well above chance, so the equivalence checks above are not
    comparing degenerate models."""
    trained = train_reference(
        dataset.adjacency, dataset.node_data,
        ReferenceTrainConfig(epochs=80, learning_rate=0.1, seed=0))
    chance = 1.0 / dataset.node_data.n_classes
    assert trained.test_accuracy > chance + 0.1
