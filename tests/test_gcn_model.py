"""Tests for the reference GCN layer/model/training loop."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gcn import (GCNModel, ReferenceTrainConfig, train_reference)
from repro.gcn.layers import GraphConvLayer
from repro.gcn.loss import masked_cross_entropy
from repro.graphs import gcn_normalize, load_dataset, make_node_data
from repro.graphs.generators import community_ring_graph


@pytest.fixture(scope="module")
def setup():
    adj = community_ring_graph(80, avg_degree=8, n_communities=4, seed=0)
    data = make_node_data(adj, n_features=10, n_classes=3, seed=0)
    return gcn_normalize(adj), data


class TestLayer:
    def test_forward_shapes(self, setup):
        adj, data = setup
        layer = GraphConvLayer(np.random.default_rng(0).normal(size=(10, 6)))
        cache = layer.forward(adj, data.features)
        assert cache.z.shape == (80, 6)
        assert cache.h_out.shape == (80, 6)
        assert np.all(cache.h_out >= 0)  # relu

    def test_forward_feature_mismatch(self, setup):
        adj, data = setup
        layer = GraphConvLayer(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            layer.forward(adj, data.features)

    def test_identity_layer_keeps_sign(self, setup):
        adj, data = setup
        layer = GraphConvLayer(np.random.default_rng(1).normal(size=(10, 2)),
                               activation="identity")
        cache = layer.forward(adj, data.features)
        np.testing.assert_array_equal(cache.h_out, cache.z)

    def test_backward_shapes(self, setup):
        adj, data = setup
        layer = GraphConvLayer(np.random.default_rng(2).normal(size=(10, 5)))
        cache = layer.forward(adj, data.features)
        grads = layer.backward(adj, cache, np.ones_like(cache.z))
        assert grads.weight_grad.shape == (10, 5)
        assert grads.input_grad.shape == (80, 10)

    def test_backward_shape_mismatch(self, setup):
        adj, data = setup
        layer = GraphConvLayer(np.zeros((10, 5)))
        cache = layer.forward(adj, data.features)
        with pytest.raises(ValueError):
            layer.backward(adj, cache, np.ones((80, 4)))

    def test_apply_gradient_sgd(self):
        layer = GraphConvLayer(np.ones((2, 2)))
        layer.apply_gradient(np.ones((2, 2)), lr=0.1)
        np.testing.assert_allclose(layer.weight, 0.9)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            GraphConvLayer(np.zeros(3))


class TestModelGradients:
    def test_weight_gradients_numerically(self, setup):
        """Finite-difference check of the full backward pass — this pins the
        four training equations of the paper (Section 2.1)."""
        adj, data = setup
        model = GCNModel([10, 8, 3], seed=0)
        feats = data.features.astype(np.float64)
        labels = data.labels
        mask = data.train_mask

        state = model.forward(adj, feats)
        loss, grad_logits = model.loss_and_logits_grad(state.logits, labels, mask)
        grads = model.backward(adj, state, grad_logits)

        rng = np.random.default_rng(0)
        eps = 1e-6
        for l, layer in enumerate(model.layers):
            for _ in range(4):  # spot-check a few entries per layer
                i = rng.integers(0, layer.weight.shape[0])
                j = rng.integers(0, layer.weight.shape[1])
                original = layer.weight[i, j]
                layer.weight[i, j] = original + eps
                bumped_logits = model.forward(adj, feats).logits
                bumped_loss = masked_cross_entropy(bumped_logits, labels, mask)
                layer.weight[i, j] = original
                numeric = (bumped_loss - loss) / eps
                assert grads[l][i, j] == pytest.approx(numeric, rel=1e-3,
                                                       abs=1e-5)

    def test_forward_deterministic(self, setup):
        adj, data = setup
        a = GCNModel([10, 8, 3], seed=1).forward(adj, data.features).logits
        b = GCNModel([10, 8, 3], seed=1).forward(adj, data.features).logits
        np.testing.assert_array_equal(a, b)

    def test_three_layer_factory(self):
        model = GCNModel.three_layer(in_features=12, n_classes=5, hidden=16,
                                     seed=0)
        assert model.layer_dims == [12, 16, 16, 5]
        assert model.layers[-1].activation_name == "identity"
        assert model.layers[0].activation_name == "relu"

    def test_set_weights_roundtrip(self):
        model = GCNModel([6, 4, 2], seed=0)
        weights = [w + 1.0 for w in model.weights]
        model.set_weights(weights)
        np.testing.assert_allclose(model.weights[0], weights[0])
        with pytest.raises(ValueError):
            model.set_weights(weights[:1])

    def test_apply_gradients_validation(self):
        model = GCNModel([6, 4, 2], seed=0)
        with pytest.raises(ValueError):
            model.apply_gradients([np.zeros((6, 4))], lr=0.1)

    def test_layer_dims_validation(self):
        with pytest.raises(ValueError):
            GCNModel([5], seed=0)


class TestReferenceTraining:
    def test_loss_decreases(self, setup):
        adj, data = setup
        result = train_reference(adj, data, ReferenceTrainConfig(
            epochs=30, learning_rate=0.1, seed=0, normalize_adjacency=False))
        losses = [h.loss for h in result.history]
        assert losses[-1] < losses[0]

    def test_learns_better_than_chance(self):
        adj = community_ring_graph(120, avg_degree=10, n_communities=6, seed=1)
        data = make_node_data(adj, n_features=16, n_classes=4, seed=1)
        result = train_reference(adj, data, ReferenceTrainConfig(
            epochs=60, learning_rate=0.1, seed=0))
        assert result.test_accuracy > 0.4   # chance is 0.25

    def test_history_and_result_fields(self, setup):
        adj, data = setup
        result = train_reference(adj, data,
                                 ReferenceTrainConfig(epochs=5, seed=0))
        assert len(result.history) == 5
        assert result.history[0].epoch == 0
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.final_loss == result.history[-1].loss

    def test_single_layer_configuration(self, setup):
        adj, data = setup
        result = train_reference(adj, data, ReferenceTrainConfig(
            epochs=3, n_layers=1, seed=0))
        assert result.model.n_layers == 1

    def test_dataset_end_to_end(self):
        ds = load_dataset("protein", scale=0.05, n_features=8, n_classes=3,
                          seed=2)
        result = train_reference(ds.adjacency, ds.node_data,
                                 ReferenceTrainConfig(epochs=10, seed=0))
        assert np.isfinite(result.final_loss)
