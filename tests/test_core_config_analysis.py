"""Tests for DistTrainConfig validation and the volume-analysis helpers."""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (Algorithm, BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, DistTrainConfig,
                        predicted_bytes_per_spmm, predicted_rows_oblivious_1d,
                        predicted_rows_sparsity_aware_1d,
                        single_spmm_volume_table, spmm_1d_oblivious,
                        spmm_1d_sparsity_aware)
from repro.graphs import gcn_normalize, load_dataset
from repro.graphs.generators import erdos_renyi_graph


class TestDistTrainConfig:
    def test_defaults_valid(self):
        cfg = DistTrainConfig()
        assert cfg.algorithm == Algorithm.ONE_D
        assert cfg.n_block_rows == cfg.n_ranks

    def test_block_rows_for_15d(self):
        cfg = DistTrainConfig(n_ranks=16, algorithm="1.5d",
                              replication_factor=2)
        assert cfg.n_block_rows == 8

    def test_replication_must_divide(self):
        with pytest.raises(ValueError):
            DistTrainConfig(n_ranks=10, algorithm="1.5d", replication_factor=3)

    def test_15d_requires_c_divides_p_over_c(self):
        with pytest.raises(ValueError):
            DistTrainConfig(n_ranks=8, algorithm="1.5d", replication_factor=4)

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            DistTrainConfig(n_ranks=0)
        with pytest.raises(ValueError):
            DistTrainConfig(algorithm="2d")
        with pytest.raises(ValueError):
            DistTrainConfig(n_layers=0)
        with pytest.raises(ValueError):
            DistTrainConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            DistTrainConfig(epochs=-1)
        with pytest.raises(ValueError):
            DistTrainConfig(replication_factor=0)

    def test_scheme_labels(self):
        assert DistTrainConfig(sparsity_aware=False).scheme_label == "CAGNET"
        assert DistTrainConfig(sparsity_aware=True,
                               partitioner=None).scheme_label == "SA"
        assert DistTrainConfig(sparsity_aware=True,
                               partitioner="gvb").scheme_label == "SA+GVB"
        assert DistTrainConfig(sparsity_aware=True,
                               partitioner="metis_like").scheme_label == \
            "SA+METIS"


class TestPredictedVolumes:
    @pytest.fixture(scope="class")
    def problem(self):
        adj = gcn_normalize(erdos_renyi_graph(60, avg_degree=6, seed=0))
        dist = BlockRowDistribution.uniform(60, 4)
        dm = DistSparseMatrix(adj, dist)
        rng = np.random.default_rng(0)
        h = rng.normal(size=(60, 6))
        dh = DistDenseMatrix.from_global(h, dist)
        return dm, dh

    def test_oblivious_prediction_matches_measurement(self, problem):
        dm, dh = problem
        comm = make_communicator(4)
        spmm_1d_oblivious(dm, dh, comm)
        predicted = predicted_bytes_per_spmm(dm, dh.width, sparsity_aware=False)
        measured = comm.events.bytes_sent_by_rank(4, category="bcast")
        np.testing.assert_array_equal(predicted, measured)

    def test_sparsity_aware_prediction_matches_measurement(self, problem):
        dm, dh = problem
        comm = make_communicator(4)
        spmm_1d_sparsity_aware(dm, dh, comm)
        predicted = predicted_bytes_per_spmm(dm, dh.width, sparsity_aware=True)
        measured = comm.events.bytes_sent_by_rank(4, category="alltoall")
        np.testing.assert_array_equal(predicted, measured)

    def test_sparsity_aware_never_exceeds_oblivious(self, problem):
        dm, _ = problem
        sa = predicted_rows_sparsity_aware_1d(dm)
        ob = predicted_rows_oblivious_1d(dm)
        assert np.all(sa <= ob)

    def test_invalid_feature_width(self, problem):
        dm, _ = problem
        with pytest.raises(ValueError):
            predicted_bytes_per_spmm(dm, 0, sparsity_aware=True)


class TestVolumeTable:
    def test_table2_style_output(self):
        ds = load_dataset("amazon", scale=0.05, seed=0)
        rows = single_spmm_volume_table(ds.adjacency, p_values=(2, 4), f=32,
                                        partitioner="metis_like", seed=0)
        assert [r.nparts for r in rows] == [2, 4]
        for row in rows:
            assert row.max_mb >= row.avg_mb
            assert row.imbalance_pct >= 0
            d = row.as_dict()
            assert set(d) == {"p", "average_MB", "max_MB",
                              "load_imbalance_pct", "total_MB"}

    def test_volume_scales_with_f(self):
        ds = load_dataset("amazon", scale=0.05, seed=0)
        small = single_spmm_volume_table(ds.adjacency, (4,), f=10, seed=0)[0]
        large = single_spmm_volume_table(ds.adjacency, (4,), f=20, seed=0)[0]
        assert large.total_mb == pytest.approx(2 * small.total_mb)

    def test_invalid_f(self):
        ds = load_dataset("amazon", scale=0.05, seed=0)
        with pytest.raises(ValueError):
            single_spmm_volume_table(ds.adjacency, (2,), f=0)
