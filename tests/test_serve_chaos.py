"""Serving chaos suite: kill ranks mid-batch, assert supervised recovery.

The serving analogue of ``test_comm_chaos.py``: inject worker losses
into a live :class:`~repro.serve.ServingEngine` and assert the failure
contract end to end —

* exactly the in-flight batch fails, every member with its **own**
  structured, retryable :class:`~repro.serve.ServeError` carrying the
  request id and the batch composition;
* the engine rebuilds warm state in place (fresh communicator, reloaded
  weights, re-warmed compiled plans) bounded by
  ``ServeOptions.max_restarts``, queued requests survive, and
  post-restart logits are **bit-identical** to an unfailed run;
* zero shared-memory segments leak on the process backend (dead or
  recovered), and ``stop()``/``close()`` stay bounded with a dead
  worker — seconds, not the 600 s watchdog.

Run standalone with ``pytest -m conformance``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.comm.faults import FaultPlan, WatchdogTimeout, WorkerFailure
from repro.core import DistTrainConfig, setup_distributed
from repro.obs import TRACE
from repro.serve import (ServeError, ServeOptions, ServingEngine,
                         prepare_checkpoint, submit_with_retries)

pytestmark = pytest.mark.conformance

#: Backends whose injected kills the serving engine must recover from.
RECOVERABLE_BACKENDS = ("sim", "threaded", "process")


@pytest.fixture(autouse=True)
def _reset_trace():
    TRACE.disable()
    TRACE.clear()
    yield
    TRACE.disable()
    TRACE.clear()


@pytest.fixture(scope="module")
def dataset():
    from repro.graphs import load_dataset
    return load_dataset("reddit", scale=0.05, n_features=6, n_classes=3,
                        seed=2)


def serve_config(backend: str) -> DistTrainConfig:
    return DistTrainConfig(n_ranks=2, partitioner=None, epochs=2, hidden=8,
                           n_layers=2, backend=backend, seed=0)


@pytest.fixture(scope="module")
def checkpoint_file(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-chaos-ckpt") / "model.ckpt"
    return prepare_checkpoint(dataset, serve_config("sim"), path, epochs=2)


def recoverable_engine(dataset, backend, checkpoint, **opts):
    """A from-checkpoint engine (the production path: retained weights +
    rebuild factory, so supervised recovery is armed)."""
    opts.setdefault("max_restarts", 1)
    return ServingEngine.from_checkpoint(
        dataset, serve_config(backend), checkpoint,
        options=ServeOptions(**opts))


def _shm_segments(comm):
    """This communicator's live shared-memory segments (see
    ``test_comm_chaos._shm_segments``)."""
    prefix = f"rpr{comm._uid}"
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        return sorted(n for n in os.listdir(shm_dir)
                      if n.startswith(prefix))
    return sorted(a.shm.name for a in comm._arenas.values())


def features_for(dataset, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((dataset.n_vertices, dataset.n_features))


# ----------------------------------------------------------------------
# The headline scenario: SIGKILL a rank mid-batch on the process backend
# ----------------------------------------------------------------------
class TestKillMidBatch:
    def test_process_kill_recovers_and_serves_bit_identically(
            self, dataset, checkpoint_file):
        """A real OS worker SIGKILLed mid-batch fails exactly the
        in-flight batch with structured retryable errors; the engine
        restarts within budget, a queued request survives the restart,
        post-restart logits are bit-identical, and no shm leaks."""
        engine = recoverable_engine(dataset, "process", checkpoint_file,
                                    max_batch_width=dataset.n_features)
        TRACE.enable()
        feats = features_for(dataset, seed=3)
        try:
            engine.start()
            # Fault-free reference logits from the same engine/weights.
            ref = engine.submit(feats).result(timeout=120.0).logits.copy()

            old_comm = engine.comm
            engine.inject_faults(FaultPlan.kill(rank=1, op_index=0))
            # Force deterministic composition: with the column budget at
            # one request, A is the in-flight batch and B stays queued
            # across the restart.
            engine.stop()
            fut_a = engine.submit(feats, tenant="acme")
            fut_b = engine.submit(feats, tenant="bcme")
            t0 = time.monotonic()
            engine.start()

            with pytest.raises(ServeError) as excinfo:
                fut_a.result(timeout=120.0)
            err = excinfo.value
            assert err.request_id == 1
            assert err.batch == (1,)            # exactly the in-flight batch
            assert err.tenant == "acme"
            assert err.retryable
            assert isinstance(err.cause, WorkerFailure)

            # The queued request survives the restart and is served by
            # the rebuilt engine, bit-identical to the unfailed run.
            out_b = fut_b.result(timeout=120.0)
            assert time.monotonic() - t0 < 60.0
            assert np.array_equal(out_b.logits, ref)

            assert engine.restarts == 1
            assert engine.comm is not old_comm
            assert engine.health()["status"] == "ready"
            assert engine.health()["restarts"] == 1
            stats = engine.stats()
            assert stats["serve_restarts_total"] == 1.0
            assert stats["serve_batch_failures_total"] == 1.0
            assert _shm_segments(old_comm) == [], "dead comm leaked shm"

            # A retried request against the recovered engine succeeds.
            out_retry = submit_with_retries(engine, feats, timeout_s=120.0)
            assert np.array_equal(out_retry.logits, ref)
        finally:
            new_comm = engine.comm
            t_close = time.monotonic()
            engine.close()
            assert time.monotonic() - t_close < 30.0
        assert _shm_segments(old_comm) == []
        assert _shm_segments(new_comm) == [], "recovered comm leaked shm"
        names = [(track, name) for track, name, *_ in TRACE.spans()]
        assert ("serve", "serve.restart") in names

    @pytest.mark.parametrize("backend", ("sim", "threaded"))
    def test_in_process_kill_recovers_identically(self, dataset, backend,
                                                  checkpoint_file):
        """Same contract on the in-process backends (injected kills
        raise WorkerFailure directly instead of SIGKILLing a pid)."""
        engine = recoverable_engine(dataset, backend, checkpoint_file,
                                    batching=False)
        feats = features_for(dataset, seed=4)
        try:
            engine.start()
            ref = engine.submit(feats).result(timeout=120.0).logits.copy()
            engine.inject_faults(FaultPlan.kill(rank=1, op_index=0))
            with pytest.raises(ServeError) as excinfo:
                engine.submit(feats).result(timeout=120.0)
            assert excinfo.value.retryable
            out = engine.submit(feats).result(timeout=120.0)
            assert np.array_equal(out.logits, ref)
            assert engine.restarts == 1
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Restart budget exhaustion: fail fast, fail everything, stay bounded
# ----------------------------------------------------------------------
class TestRestartBudget:
    def test_exhausted_budget_fails_engine_and_queued_requests(
            self, dataset, checkpoint_file):
        engine = recoverable_engine(dataset, "sim", checkpoint_file,
                                    max_restarts=0,
                                    max_batch_width=dataset.n_features)
        feats = features_for(dataset, seed=5)
        try:
            engine.inject_faults(FaultPlan.kill(rank=0, op_index=0))
            fut_a = engine.submit(feats)
            fut_b = engine.submit(feats)
            engine.start()

            with pytest.raises(ServeError) as exc_a:
                fut_a.result(timeout=60.0)
            assert not exc_a.value.retryable    # no budget -> no retry lie
            with pytest.raises(ServeError) as exc_b:
                fut_b.result(timeout=60.0)      # queued: drained, not hung
            assert not exc_b.value.retryable

            health = engine.health()
            assert health["status"] == "failed"
            assert health["restarts"] == 0
            assert "WorkerFailure" in health["last_failure"]
            with pytest.raises(RuntimeError, match="failed permanently"):
                engine.submit(feats)
            with pytest.raises(RuntimeError, match="failed permanently"):
                engine.start()

            t0 = time.monotonic()
            engine.stop()
            assert time.monotonic() - t0 < 30.0
        finally:
            engine.close()

    def test_engine_without_rebuild_fails_permanently(self, dataset):
        """A directly-constructed engine (no rebuild factory) cannot
        recover: the failure is structured but marked non-retryable."""
        setup = setup_distributed(dataset, serve_config("sim"))
        engine = ServingEngine(setup.model, comm=setup.comm,
                               options=ServeOptions(batching=False),
                               owns_comm=True)
        feats = features_for(dataset, seed=6)
        try:
            engine.start()
            engine.inject_faults(FaultPlan.kill(rank=0, op_index=0))
            with pytest.raises(ServeError) as excinfo:
                engine.submit(feats).result(timeout=60.0)
            assert not excinfo.value.retryable
            assert engine.health()["status"] == "failed"
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Bounded teardown with dead workers (process backend)
# ----------------------------------------------------------------------
class TestBoundedTeardown:
    def test_stop_and_close_bounded_with_dead_worker(self, dataset,
                                                     checkpoint_file):
        """SIGKILL an OS worker outside any fault plan, drive a request
        into the dead pool: detection rides the 0.2 s liveness poll, the
        in-flight request fails structurally, and stop()/close() return
        in seconds — never the 600 s watchdog."""
        engine = recoverable_engine(dataset, "process", checkpoint_file,
                                    max_restarts=0, batching=False)
        feats = features_for(dataset, seed=7)
        try:
            engine.start()
            engine.submit(feats).result(timeout=120.0)
            engine.comm._procs[1].kill()
            engine.comm._procs[1].join(timeout=10.0)
            with pytest.raises(ServeError) as excinfo:
                engine.submit(feats).result(timeout=120.0)
            assert isinstance(excinfo.value.cause, WorkerFailure)
            t0 = time.monotonic()
            engine.stop()
            stop_s = time.monotonic() - t0
            assert stop_s < 30.0, f"stop() took {stop_s:.1f}s"
        finally:
            comm = engine.comm
            t0 = time.monotonic()
            engine.close()
            assert time.monotonic() - t0 < 30.0
        assert _shm_segments(comm) == []
        assert not any(p.is_alive() for p in comm._procs or [])

    def test_escalated_teardown_kills_the_worker_pool(self, dataset,
                                                      checkpoint_file):
        """The stop() escalation path: tearing down the pool leaves no
        live worker, and close() afterwards stays bounded and clean."""
        engine = recoverable_engine(dataset, "process", checkpoint_file,
                                    batching=False)
        try:
            engine.start()
            engine.submit(features_for(dataset, 8)).result(timeout=120.0)
            engine._escalate_teardown()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and \
                    any(p.is_alive() for p in engine.comm._procs or []):
                time.sleep(0.05)
            assert not any(p.is_alive() for p in engine.comm._procs or [])
        finally:
            comm = engine.comm
            t0 = time.monotonic()
            engine.close()
            assert time.monotonic() - t0 < 30.0
        assert _shm_segments(comm) == []


# ----------------------------------------------------------------------
# Watchdog timeout classification
# ----------------------------------------------------------------------
class TestWatchdogTimeout:
    def test_is_a_structured_worker_failure(self):
        """Alive-but-stuck workers surface as WatchdogTimeout — a
        WorkerFailure subclass, so one supervised-recovery net catches
        both — while the legacy RuntimeError message is preserved."""
        exc = WatchdogTimeout(1, backend="process", timeout_s=5.0,
                              detail="unresponsive ranks 1")
        assert isinstance(exc, WorkerFailure)
        assert isinstance(exc, RuntimeError)
        assert exc.rank == 1
        assert exc.timeout_s == 5.0
        assert "did not finish" in str(exc)
        assert "unresponsive ranks 1" in str(exc)
