"""Inference serving: micro-batching, admission, identity, accounting.

The load-bearing guarantee — and the reason batching is safe to enable
by default — is **bit-identity**: a coalesced batch of k requests must
produce, per request, exactly the bytes that serving each request alone
would produce, on every communicator backend.  The distributed SpMM is
column-separable and the engine runs one GEMM per stream, so equality
is exact (``np.array_equal``), not approximate.

Batch composition is nondeterministic under concurrency, so identity
tests force it: requests submitted while the drain thread is stopped
stay queued and are served as one deterministic batch at ``start()``.
"""

from __future__ import annotations

import dataclasses
import json
import queue

import numpy as np
import pytest

from repro.cli import main
from repro.comm import make_communicator
from repro.core import DistTrainConfig, setup_distributed
from repro.core.checkpoint import (CheckpointError, CheckpointManager,
                                   read_checkpoint, resolve_checkpoint)
from repro.obs import TRACE
from repro.serve import (AdmissionController, MicroBatcher, OverloadPolicy,
                         RequestExpired, RequestRejected, ServeError,
                         ServeOptions, ServingEngine, prepare_checkpoint,
                         run_load, submit_with_retries)
from repro.serve.batcher import SHUTDOWN
from repro.serve.engine import ServeFuture, ServeResult
from repro.serve.loadgen import verify_batched_identity

BACKENDS = ("sim", "threaded", "process")


@pytest.fixture(autouse=True)
def _reset_trace():
    TRACE.disable()
    TRACE.clear()
    yield
    TRACE.disable()
    TRACE.clear()


@pytest.fixture(scope="module")
def dataset():
    return load_small_dataset()


def load_small_dataset():
    from repro.graphs import load_dataset
    return load_dataset("reddit", scale=0.05, n_features=6, n_classes=3,
                        seed=2)


@pytest.fixture(scope="module")
def config():
    return DistTrainConfig(n_ranks=2, partitioner=None, epochs=2, hidden=8,
                           n_layers=2, backend="sim", seed=0)


@pytest.fixture(scope="module")
def checkpoint_file(dataset, config, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-ckpt") / "model.ckpt"
    return prepare_checkpoint(dataset, config, path, epochs=config.epochs)


def make_engine(dataset, config, **opts) -> ServingEngine:
    """An engine around freshly initialised (untrained) weights — the
    identity property holds for any weights, so most tests skip the
    checkpoint round-trip."""
    setup = setup_distributed(dataset, config)
    return ServingEngine(setup.model, comm=setup.comm,
                         options=ServeOptions(**opts), owns_comm=True)


def request_features(dataset, count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((dataset.n_vertices, dataset.n_features))
            for _ in range(count)]


# ----------------------------------------------------------------------
# MicroBatcher (pure unit tests: requests are anything with a .width)
# ----------------------------------------------------------------------
class _Req:
    def __init__(self, width: int) -> None:
        self.width = width


class TestMicroBatcher:
    def test_full_budget_returns_without_paying_the_window(self):
        # Four queued requests against a three-request column budget:
        # the overflowing request ends the batch immediately — a
        # saturated queue never waits out the 30 s window.
        q = queue.Queue()
        reqs = [_Req(2) for _ in range(4)]
        for r in reqs:
            q.put(r)
        batcher = MicroBatcher(q, max_batch_width=6, max_wait_s=30.0)
        from time import monotonic
        t0 = monotonic()
        assert batcher.next_batch() == reqs[:3]
        assert monotonic() - t0 < 5.0      # nowhere near the 30 s window
        q.put(SHUTDOWN)                     # flushes the carried request
        assert batcher.next_batch() == [reqs[3]]
        assert monotonic() - t0 < 5.0

    def test_window_bounds_the_wait_when_load_is_light(self):
        q = queue.Queue()
        q.put(_Req(1))
        batcher = MicroBatcher(q, max_batch_width=100, max_wait_s=0.05)
        from time import monotonic
        t0 = monotonic()
        assert len(batcher.next_batch()) == 1
        elapsed = monotonic() - t0
        assert 0.04 <= elapsed < 5.0        # paid the window, nothing more

    def test_column_budget_carries_the_overflowing_request(self):
        q = queue.Queue()
        first, second, third = _Req(3), _Req(3), _Req(3)
        for r in (first, second, third):
            q.put(r)
        batcher = MicroBatcher(q, max_batch_width=6, max_wait_s=0.0)
        assert batcher.next_batch() == [first, second]
        # The carried request leads the next batch — never dropped,
        # never reordered behind later arrivals.
        assert batcher.next_batch() == [third]

    def test_single_request_wider_than_budget_forms_its_own_batch(self):
        q = queue.Queue()
        wide = _Req(100)
        q.put(wide)
        batcher = MicroBatcher(q, max_batch_width=6, max_wait_s=0.0)
        assert batcher.next_batch() == [wide]

    def test_shutdown_flushes_the_partial_batch_first(self):
        q = queue.Queue()
        r = _Req(1)
        q.put(r)
        q.put(SHUTDOWN)
        batcher = MicroBatcher(q, max_batch_width=10, max_wait_s=30.0)
        assert batcher.next_batch() == [r]
        assert batcher.next_batch() is None
        assert batcher.next_batch() is None    # stays stopped...
        batcher.reset()                         # ...until re-armed
        q.put(SHUTDOWN)
        assert batcher.next_batch() is None

    def test_max_requests_1_disables_coalescing_and_the_window(self):
        q = queue.Queue()
        a, b = _Req(1), _Req(1)
        q.put(a)
        q.put(b)
        batcher = MicroBatcher(q, max_batch_width=10, max_wait_s=30.0,
                               max_requests=1)
        assert batcher.next_batch() == [a]
        assert batcher.next_batch() == [b]

    def test_rejects_bad_parameters(self):
        q = queue.Queue()
        with pytest.raises(ValueError):
            MicroBatcher(q, max_batch_width=0, max_wait_s=0.0)
        with pytest.raises(ValueError):
            MicroBatcher(q, max_batch_width=1, max_wait_s=-0.1)
        with pytest.raises(ValueError):
            MicroBatcher(q, max_batch_width=1, max_wait_s=0.0,
                         max_requests=0)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_bounded_queue_rejects_with_structured_fields(self):
        ctl = AdmissionController(queue_depth=2)
        ctl.offer("a")
        ctl.offer("b", tenant="acme")
        with pytest.raises(RequestRejected) as excinfo:
            ctl.offer("c", tenant="acme")
        exc = excinfo.value
        assert exc.reason == "queue_full"
        assert exc.limit == 2
        assert exc.depth == 2
        assert exc.tenant == "acme"
        assert "back off" in str(exc)
        assert ctl.accepted == 2 and ctl.rejected == 1

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=0)


# ----------------------------------------------------------------------
# Inference-only forward (satellite: skips activation caches)
# ----------------------------------------------------------------------
class TestInferenceForward:
    def test_bit_identical_to_training_forward(self, dataset, config):
        setup = setup_distributed(dataset, config)
        try:
            model = setup.model
            caches = model.forward()                    # training path
            reference = caches[-1].h_out.to_global()
            inferred = model.forward(model.features).to_global()
            assert np.array_equal(inferred, reference)
            assert inferred.dtype == reference.dtype
        finally:
            setup.comm.close()

    def test_streams_require_explicit_features(self, dataset, config):
        setup = setup_distributed(dataset, config)
        try:
            with pytest.raises(ValueError, match="streams"):
                setup.model.forward(streams=2)
        finally:
            setup.comm.close()

    def test_dtype_mismatch_is_rejected_not_cast(self, dataset, config):
        from repro.core import DistDenseMatrix
        setup = setup_distributed(dataset, config)
        try:
            wrong = DistDenseMatrix.from_global(
                np.ones((dataset.n_vertices, dataset.n_features),
                        dtype=np.float32),
                setup.model.dist, dtype=np.float32)
            with pytest.raises(ValueError, match="dtype"):
                setup.model.forward(wrong)
        finally:
            setup.comm.close()


# ----------------------------------------------------------------------
# Batched == sequential, bit for bit, on every backend
# ----------------------------------------------------------------------
class TestBatchedIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_equals_sequential(self, dataset, config, backend):
        cfg = dataclasses.replace(config, backend=backend)
        engine = make_engine(dataset, cfg,
                             max_batch_width=dataset.n_features * 8)
        try:
            report = verify_batched_identity(
                engine, request_features(dataset, 5, seed=11))
            assert report["bit_identical"] is True
            assert report["sequential_batch_sizes"] == [1]
            assert report["batched_max_batch_size"] > 1
        finally:
            engine.close()

    def test_column_budget_splits_batches_without_breaking_identity(
            self, dataset, config):
        # Budget of 2 requests' columns: 5 queued requests must be served
        # as ceil(5/2) batches, all still bit-identical.
        engine = make_engine(dataset, config,
                             max_batch_width=dataset.n_features * 2)
        try:
            report = verify_batched_identity(
                engine, request_features(dataset, 5, seed=13))
            assert report["bit_identical"] is True
            assert report["batched_max_batch_size"] == 2
        finally:
            engine.close()

    def test_no_batch_mode_serves_one_request_per_forward(self, dataset,
                                                          config):
        engine = make_engine(dataset, config, batching=False,
                             max_batch_width=dataset.n_features * 8)
        try:
            futures = [engine.submit(f)
                       for f in request_features(dataset, 4, seed=5)]
            engine.start()
            results = [f.result(timeout=120.0) for f in futures]
            assert all(r.batch_size == 1 for r in results)
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Engine behaviour: rejection, accounting, restart, metrics, spans
# ----------------------------------------------------------------------
class TestServingEngine:
    def test_overload_rejects_and_counts(self, dataset, config):
        engine = make_engine(dataset, config, queue_depth=1)
        try:
            features = request_features(dataset, 2, seed=7)
            accepted = engine.submit(features[0])       # fills the queue
            with pytest.raises(RequestRejected) as excinfo:
                engine.submit(features[1], tenant="acme")
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.tenant == "acme"
            engine.start()
            assert accepted.result(timeout=120.0).batch_size == 1
            stats = engine.stats()
            assert stats['serve_rejected_total{tenant="acme"}'] == 1.0
            assert stats["serve_accepted_total"] == 1
        finally:
            engine.close()

    def test_per_tenant_accounting_splits_batch_volume_evenly(
            self, dataset, config):
        engine = make_engine(dataset, config,
                             max_batch_width=dataset.n_features * 8)
        try:
            futures = [engine.submit(f, tenant=("blue", "green")[i % 2])
                       for i, f in enumerate(
                           request_features(dataset, 4, seed=3))]
            engine.start()            # one deterministic coalesced batch
            results = [f.result(timeout=120.0) for f in futures]
            assert {r.batch_size for r in results} == {4}
            stats = engine.stats()
            for tenant in ("blue", "green"):
                label = f'{{tenant="{tenant}"}}'
                assert stats[f"serve_requests_total{label}"] == 2.0
            blue = stats['tenant_comm_bytes_total{tenant="blue"}']
            green = stats['tenant_comm_bytes_total{tenant="green"}']
            # One coalesced payload, four members: an even split is the
            # only attribution stable under batch composition.
            assert blue == green
            assert blue > 0.0
        finally:
            engine.close()

    def test_stop_start_retains_warm_plans(self, dataset, config):
        engine = make_engine(dataset, config,
                             max_batch_width=dataset.n_features * 8)
        try:
            engine.start()
            first = engine.submit(
                request_features(dataset, 1, seed=1)[0]).result(timeout=120.0)
            engine.stop()
            retained = engine.model.plan_stats()["plans_retained"]
            engine.start()
            second = engine.submit(
                request_features(dataset, 1, seed=2)[0]).result(timeout=120.0)
            assert engine.model.plan_stats()["plans_retained"] == retained
            assert first.batch_width == second.batch_width
        finally:
            engine.close()

    def test_submit_after_close_raises(self, dataset, config):
        engine = make_engine(dataset, config)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(request_features(dataset, 1)[0])

    def test_bad_request_shape_is_rejected_in_the_caller(self, dataset,
                                                         config):
        engine = make_engine(dataset, config)
        try:
            with pytest.raises(ValueError, match="shape"):
                engine.submit(np.ones((3, dataset.n_features)))
            with pytest.raises(ValueError, match="shape"):
                engine.submit(np.ones(dataset.n_vertices))
        finally:
            engine.close()

    def test_metrics_and_spans_cover_the_request_path(self, dataset,
                                                      config):
        TRACE.enable()
        engine = make_engine(dataset, config,
                             max_batch_width=dataset.n_features * 8)
        try:
            futures = [engine.submit(f)
                       for f in request_features(dataset, 3, seed=9)]
            engine.start()
            for f in futures:
                f.result(timeout=120.0)
            stats = engine.stats()
        finally:
            engine.close()
        assert stats["serve_batches_total"] == 1.0
        assert stats["serve_batch_size_max"] == 3.0
        assert stats["serve_batch_width_max"] == 3.0 * dataset.n_features
        assert stats["serve_request_seconds_count"] == 3.0
        assert stats["serve_request_seconds_p99"] >= \
            stats["serve_request_seconds_p50"] > 0.0
        assert stats["serve_queue_limit"] == 256
        assert stats["serve_plans_retained"] >= 1
        spans = TRACE.spans()
        names = [(track, name) for track, name, *_ in spans]
        assert names.count(("serve", "serve.batch")) == 1
        assert names.count(("serve", "serve.request")) == 3
        request_spans = [s for s in spans if s[1] == "serve.request"]
        batch_span = next(s for s in spans if s[1] == "serve.batch")
        for span in request_spans:
            assert span[3] <= batch_span[3]     # submit precedes execute
            assert span[4] >= batch_span[4]     # fulfil follows it

    def test_run_load_reports_latency_percentiles(self, dataset, config):
        engine = make_engine(dataset, config,
                             max_batch_width=dataset.n_features * 8)
        try:
            engine.start()
            features = request_features(dataset, 1, seed=4)
            step = run_load(engine, lambda i: features[0],
                            offered_qps=None, duration_s=0.3, clients=2,
                            tenants=("t0", "t1"))
        finally:
            engine.close()
        assert step.completed > 0
        assert step.achieved_qps > 0.0
        assert step.p99_ms >= step.p50_ms > 0.0


# ----------------------------------------------------------------------
# Checkpoint loading (file, directory, fingerprint gate)
# ----------------------------------------------------------------------
class TestCheckpointServing:
    def test_serves_from_a_checkpoint_file(self, dataset, config,
                                           checkpoint_file):
        engine = ServingEngine.from_checkpoint(dataset, config,
                                               checkpoint_file)
        try:
            assert engine.checkpoint_epoch == config.epochs
            with engine:
                result = engine.submit(
                    request_features(dataset, 1)[0]).result(timeout=120.0)
            assert result.logits.shape == (dataset.n_vertices,
                                           dataset.n_classes)
        finally:
            engine.close()

    def test_serves_newest_checkpoint_from_a_directory(self, dataset,
                                                       config,
                                                       checkpoint_file,
                                                       tmp_path):
        ckpt = read_checkpoint(checkpoint_file)
        manager = CheckpointManager(tmp_path)
        manager.save(dataclasses.replace(ckpt, epoch=1))
        manager.save(ckpt)
        engine = ServingEngine.from_checkpoint(dataset, config, tmp_path)
        try:
            assert engine.checkpoint_epoch == ckpt.epoch
        finally:
            engine.close()

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            resolve_checkpoint(tmp_path)

    def test_fingerprint_mismatch_refuses_to_serve(self, dataset, config,
                                                   checkpoint_file):
        other = dataclasses.replace(config, hidden=config.hidden * 2)
        with pytest.raises(CheckpointError, match="fingerprint"):
            ServingEngine.from_checkpoint(dataset, other, checkpoint_file)

    def test_backend_is_not_part_of_the_fingerprint(self, dataset, config,
                                                    checkpoint_file):
        # Trained on sim, served on threaded: legitimately free axis.
        threaded = dataclasses.replace(config, backend="threaded")
        engine = ServingEngine.from_checkpoint(dataset, threaded,
                                               checkpoint_file)
        try:
            assert engine.checkpoint_epoch == config.epochs
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Process-backend exchange-plan cache env knob (satellite)
# ----------------------------------------------------------------------
class TestProcessPlanCacheEnv:
    def test_env_sets_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROC_PLAN_CACHE", "3")
        comm = make_communicator(2, backend="process")
        try:
            assert comm.plan_cache_capacity == 3
            assert comm.cache_stats()["capacity"] == 3
        finally:
            comm.close()

    @pytest.mark.parametrize("value", ["0", "-1", "lots"])
    def test_invalid_values_fail_loudly(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PROC_PLAN_CACHE", value)
        with pytest.raises(ValueError, match="REPRO_PROC_PLAN_CACHE"):
            make_communicator(2, backend="process")

    def test_hit_miss_counters_flow_through_serving_stats(self, dataset,
                                                          config):
        cfg = dataclasses.replace(config, backend="process")
        engine = make_engine(dataset, cfg,
                             max_batch_width=dataset.n_features * 8)
        try:
            engine.start()
            features = request_features(dataset, 2, seed=6)
            engine.submit(features[0]).result(timeout=120.0)
            engine.submit(features[1]).result(timeout=120.0)
            stats = engine.stats()
        finally:
            engine.close()
        # First request compiles the width's exchange plans (misses);
        # the second reuses them (hits).
        assert stats["comm_plan_cache_misses"] >= 1
        assert stats["comm_plan_cache_hits"] >= 1
        assert stats["comm_plan_cache_size"] <= \
            stats["comm_plan_cache_capacity"]

    def test_other_backends_report_no_cache(self):
        comm = make_communicator(2, backend="sim")
        try:
            assert comm.cache_stats() == {}
        finally:
            comm.close()


# ----------------------------------------------------------------------
# CLI: repro serve (demo + bench)
# ----------------------------------------------------------------------
class TestServeCommand:
    def test_demo_prints_summary_and_tenant_table(self, capsys):
        code = main(["serve", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "2", "--backend", "sim", "--requests", "4",
                     "--hidden", "8", "--layers", "2", "--train-epochs", "1",
                     "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving demo" in out
        assert "per-tenant accounting" in out
        assert "tenant-0" in out and "tenant-1" in out
        assert "plan_misses" in out

    def test_bench_writes_payload_with_identity_verdict(self, capsys,
                                                        tmp_path):
        out_path = tmp_path / "bench_serve.json"
        code = main(["serve", "--dataset", "reddit", "--scale", "0.05",
                     "--ranks", "2", "--backend", "sim", "--bench",
                     "--quick", "--duration", "0.4", "--clients", "4",
                     "--hidden", "8", "--layers", "2", "--train-epochs", "1",
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation (batched vs no-batch)" in out
        payload = json.loads(out_path.read_text())
        assert payload["identity"]["bit_identical"] is True
        assert {row["mode"] for row in payload["rows"]} == \
            {"batched", "no_batch"}
        assert payload["saturation"]["no_batch_qps"] > 0.0

    def test_parser_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["serve"])
        assert args.backend == "process"
        assert args.queue_depth == 256
        assert args.max_wait_ms == 2.0
        assert not args.no_batch and not args.bench


# ----------------------------------------------------------------------
# ServeFuture error paths + the submit/close race
# ----------------------------------------------------------------------
class TestServeFuture:
    def _result(self, request_id=0):
        return ServeResult(logits=np.zeros((2, 2)), request_id=request_id,
                           tenant="t", latency_s=0.0, batch_size=1,
                           batch_width=2)

    def test_result_reraises_the_structured_failure(self):
        future = ServeFuture()
        err = ServeError(7, (7, 8), RuntimeError("boom"), tenant="acme")
        future._fail(err)
        with pytest.raises(ServeError) as excinfo:
            future.result(timeout=1.0)
        assert excinfo.value is err
        assert excinfo.value.request_id == 7
        assert excinfo.value.batch == (7, 8)
        assert excinfo.value.tenant == "acme"
        assert excinfo.value.retryable
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_unfulfilled_wait_times_out(self):
        with pytest.raises(TimeoutError, match="not fulfilled"):
            ServeFuture().result(timeout=0.01)

    def test_first_resolution_wins_fulfil_then_fail(self):
        future = ServeFuture()
        future._fulfill(self._result(1))
        future._fail(RuntimeError("late failure must be a no-op"))
        assert future.result(timeout=1.0).request_id == 1

    def test_first_resolution_wins_fail_then_fulfil(self):
        future = ServeFuture()
        err = ServeError(2, (2,), RuntimeError("boom"))
        future._fail(err)
        future._fulfill(self._result(2))
        with pytest.raises(ServeError):
            future.result(timeout=1.0)

    def test_submit_racing_close_never_strands_a_future(self, dataset,
                                                        config):
        """Every submit that wins the race against close() is fully
        admitted and served by the drain; every loser raises the closed
        error.  No future may hang in between."""
        import threading as _threading
        engine = make_engine(dataset, config)
        engine.start()
        features = request_features(dataset, 1, seed=9)[0]
        futures, errors = [], []
        lock = _threading.Lock()

        def hammer():
            while True:
                try:
                    future = engine.submit(features)
                except RequestRejected:
                    continue                  # queue full: not the race
                except RuntimeError as exc:
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    futures.append(future)

        threads = [_threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        import time as _time
        _time.sleep(0.15)
        engine.close()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert errors and all("closed" in str(e) for e in errors)
        for future in futures:
            assert future.result(timeout=30.0).logits.shape[1] == \
                dataset.n_classes


# ----------------------------------------------------------------------
# Request deadlines: shed at dequeue, before any SpMM work
# ----------------------------------------------------------------------
class TestRequestDeadlines:
    def test_expired_request_is_shed_before_any_spmm(self, dataset, config):
        engine = make_engine(dataset, config)
        TRACE.enable()
        features = request_features(dataset, 2, seed=10)
        expired = engine.submit(features[0], tenant="late", deadline_ms=20.0)
        live = engine.submit(features[1])
        import time as _time
        _time.sleep(0.06)                     # deadline passes in-queue
        messages_before = engine.comm.events.message_count()
        try:
            engine.start()
            with pytest.raises(RequestExpired) as excinfo:
                expired.result(timeout=60.0)
            assert excinfo.value.request_id == 0
            assert excinfo.value.tenant == "late"
            assert excinfo.value.waited_s >= 0.02
            assert not excinfo.value.retryable
            result = live.result(timeout=60.0)
            assert result.batch_size == 1     # expired never joined a batch
            stats = engine.stats()
        finally:
            engine.close()
        assert stats['serve_shed_total{reason="deadline"}'] == 1.0
        # Exactly one batch ran (the live request); the expired request
        # triggered no serving span and no communication.
        batch_spans = [s for s in TRACE.spans() if s[1] == "serve.batch"]
        assert len(batch_spans) == 1
        assert batch_spans[0][5]["requests"] == 1
        assert engine.stats()["serve_batches_total"] == 1.0

    def test_unexpired_deadline_serves_normally(self, dataset, config):
        engine = make_engine(dataset, config)
        try:
            engine.start()
            features = request_features(dataset, 1, seed=11)[0]
            result = engine.submit(features,
                                   deadline_ms=60_000.0).result(timeout=60.0)
            assert result.logits.shape == (dataset.n_vertices,
                                           dataset.n_classes)
            assert engine.stats()[
                'serve_shed_total{reason="deadline"}'] == 0.0
        finally:
            engine.close()

    def test_default_deadline_comes_from_options(self, dataset, config):
        engine = make_engine(dataset, config, default_deadline_ms=15.0)
        features = request_features(dataset, 1, seed=12)[0]
        future = engine.submit(features)
        import time as _time
        _time.sleep(0.05)
        try:
            engine.start()
            with pytest.raises(RequestExpired):
                future.result(timeout=60.0)
        finally:
            engine.close()

    def test_nonpositive_deadline_rejected_at_submit(self, dataset, config):
        engine = make_engine(dataset, config)
        features = request_features(dataset, 1, seed=13)[0]
        try:
            with pytest.raises(ValueError, match="deadline_ms"):
                engine.submit(features, deadline_ms=0.0)
        finally:
            engine.close()

    def test_options_validate_resilience_knobs(self):
        with pytest.raises(ValueError, match="max_restarts"):
            ServeOptions(max_restarts=-1)
        with pytest.raises(ValueError, match="default_deadline_ms"):
            ServeOptions(default_deadline_ms=-5.0)
        with pytest.raises(ValueError, match="stop_grace_s"):
            ServeOptions(stop_grace_s=0.0)


# ----------------------------------------------------------------------
# Overload policy: hysteresis, priority shedding, window shrinking
# ----------------------------------------------------------------------
class TestOverloadPolicy:
    def test_hysteresis_enters_high_and_exits_low(self):
        policy = OverloadPolicy(queue_limit=10)
        for _ in range(30):
            policy.observe(10)
        assert policy.degraded and policy.pressure() > 0.9
        policy.observe(8)                     # still above exit watermark
        assert policy.degraded
        for _ in range(30):
            policy.observe(0)
        assert not policy.degraded

    def test_sheds_lowest_priority_first_never_the_top_tier(self):
        policy = OverloadPolicy(queue_limit=10,
                                tenant_priorities={"gold": 2, "free": 0})
        assert policy.shed_cutoff() is None   # healthy: no shedding
        for _ in range(30):
            policy.observe(10)                # saturate: pressure -> 1.0
        assert policy.should_shed("free")
        assert not policy.should_shed("gold")
        assert policy.shed_total == 1

    def test_single_tier_degrades_through_the_window_only(self):
        policy = OverloadPolicy(queue_limit=10)
        for _ in range(30):
            policy.observe(10)
        assert policy.degraded
        assert policy.shed_cutoff() is None   # nothing lower to sacrifice
        assert not policy.should_shed("anyone")
        assert policy.window_scale() < 1.0

    def test_window_scale_is_one_when_healthy_and_floored_under_load(self):
        policy = OverloadPolicy(queue_limit=10, min_window_scale=0.25)
        assert policy.window_scale() == 1.0
        for _ in range(30):
            policy.observe(10)
        assert policy.window_scale() == 0.25

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="alpha"):
            OverloadPolicy(queue_limit=4, alpha=0.0)
        with pytest.raises(ValueError, match="enter"):
            OverloadPolicy(queue_limit=4, enter_pressure=0.3,
                           exit_pressure=0.5)

    def test_engine_sheds_low_priority_under_pressure(self, dataset,
                                                      config):
        engine = make_engine(dataset, config, queue_depth=4,
                             tenant_priorities={"gold": 1, "free": 0})
        features = request_features(dataset, 1, seed=14)[0]
        try:
            # Simulate sustained pressure directly on the policy (the
            # engine feeds it the live queue depth at every submit).
            engine.overload.depth_ewma = 40.0
            engine.overload.degraded = True
            with pytest.raises(RequestRejected) as excinfo:
                engine.submit(features, tenant="free")
            assert excinfo.value.reason == "overload_shed"
            assert excinfo.value.tenant == "free"
            future = engine.submit(features, tenant="gold")
            stats = engine.stats()
            assert stats['serve_shed_total{reason="overload"}'] == 1.0
            assert stats["serve_degraded"] == 1.0
            assert engine.health()["status"] == "degraded"
            engine.start()
            assert future.result(timeout=60.0).tenant == "gold"
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Client-side retry helper (backoff + jitter)
# ----------------------------------------------------------------------
class _ScriptedEngine:
    """A fake engine whose submit() resolves from a script of outcomes:
    "ok", "retryable", "fatal", "rejected"."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def submit(self, features, tenant="default", deadline_ms=None):
        outcome = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        future = ServeFuture()
        if outcome == "rejected":
            raise RequestRejected("queue_full", depth=1, limit=1,
                                  tenant=tenant)
        if outcome == "ok":
            future._fulfill(ServeResult(
                logits=np.ones((2, 2)), request_id=self.calls,
                tenant=tenant, latency_s=0.0, batch_size=1, batch_width=2))
        elif outcome == "retryable":
            future._fail(ServeError(self.calls, (self.calls,),
                                    RuntimeError("transient"),
                                    retryable=True))
        else:
            future._fail(ServeError(self.calls, (self.calls,),
                                    RuntimeError("permanent"),
                                    retryable=False))
        return future


class TestSubmitWithRetries:
    def test_retries_transient_failures_until_success(self):
        import random as _random
        engine = _ScriptedEngine(["retryable", "retryable", "ok"])
        result = submit_with_retries(engine, None, attempts=4,
                                     backoff_s=0.001,
                                     rng=_random.Random(0))
        assert result.request_id == 3
        assert engine.calls == 3

    def test_exhausted_attempts_reraise_the_last_error(self):
        import random as _random
        engine = _ScriptedEngine(["retryable"])
        with pytest.raises(ServeError, match="transient"):
            submit_with_retries(engine, None, attempts=3, backoff_s=0.001,
                                rng=_random.Random(0))
        assert engine.calls == 3

    def test_non_retryable_failure_propagates_immediately(self):
        engine = _ScriptedEngine(["fatal"])
        with pytest.raises(ServeError, match="permanent"):
            submit_with_retries(engine, None, attempts=5, backoff_s=0.001)
        assert engine.calls == 1

    def test_rejection_propagates_unless_opted_in(self):
        import random as _random
        engine = _ScriptedEngine(["rejected", "ok"])
        with pytest.raises(RequestRejected):
            submit_with_retries(engine, None, attempts=3, backoff_s=0.001)
        assert engine.calls == 1
        engine = _ScriptedEngine(["rejected", "ok"])
        result = submit_with_retries(engine, None, attempts=3,
                                     backoff_s=0.001, retry_rejected=True,
                                     rng=_random.Random(0))
        assert result.request_id == 2

    def test_validates_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            submit_with_retries(_ScriptedEngine(["ok"]), None, attempts=0)
