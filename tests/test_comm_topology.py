"""Tests for the network topology models and the topology-aware machine."""

import numpy as np
import pytest

from repro.comm import (DragonflyTopology, FatTreeTopology, FlatTopology,
                        TopologyMachine, Torus2DTopology, get_topology,
                        make_communicator, make_topology_machine, perlmutter)
from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        spmm_1d_sparsity_aware)
from repro.graphs import erdos_renyi_graph, gcn_normalize


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------
class TestFlatTopology:
    def test_hops(self):
        topo = FlatTopology()
        assert topo.hops(3, 3) == 0
        assert topo.hops(0, 7) == 1
        assert topo.bandwidth_taper(0, 7) == 1.0


class TestFatTreeTopology:
    def test_same_leaf_is_two_hops(self):
        topo = FatTreeTopology(radix=4)
        assert topo.hops(0, 3) == 2       # same leaf switch
        assert topo.hops(5, 5) == 0

    def test_hops_grow_with_level_distance(self):
        topo = FatTreeTopology(radix=2, levels=4)
        assert topo.hops(0, 1) == 2       # same leaf
        assert topo.hops(0, 2) == 4       # one level up
        assert topo.hops(0, 4) == 6       # two levels up
        assert topo.hops(0, 8) == 8       # three levels up

    def test_hops_capped_at_levels(self):
        topo = FatTreeTopology(radix=2, levels=2)
        assert topo.hops(0, 1000) == 4

    def test_taper_applies_above_leaf(self):
        topo = FatTreeTopology(radix=2, levels=3, taper=2.0)
        assert topo.bandwidth_taper(0, 1) == 1.0
        assert topo.bandwidth_taper(0, 2) == 2.0
        assert topo.bandwidth_taper(0, 4) == 4.0

    def test_symmetry(self):
        topo = FatTreeTopology(radix=3, levels=3)
        for a, b in [(0, 5), (2, 17), (9, 9)]:
            assert topo.hops(a, b) == topo.hops(b, a)

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTreeTopology(radix=1)
        with pytest.raises(ValueError):
            FatTreeTopology(levels=0)
        with pytest.raises(ValueError):
            FatTreeTopology(taper=0.5)


class TestTorus2DTopology:
    def test_manhattan_with_wraparound(self):
        topo = Torus2DTopology(rows=4, cols=4)
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 1) == 1       # right neighbour
        assert topo.hops(0, 3) == 1       # wraps around the row
        assert topo.hops(0, 12) == 1      # wraps around the column
        assert topo.hops(0, 5) == 2       # diagonal neighbour
        assert topo.hops(0, 10) == 4      # opposite corner: 2 + 2

    def test_symmetry(self):
        topo = Torus2DTopology(rows=3, cols=5)
        for a, b in [(0, 7), (4, 14), (2, 2)]:
            assert topo.hops(a, b) == topo.hops(b, a)

    def test_validation(self):
        with pytest.raises(ValueError):
            Torus2DTopology(rows=0, cols=2)


class TestDragonflyTopology:
    def test_intra_vs_inter_group(self):
        topo = DragonflyTopology(group_size=4, global_taper=2.0)
        assert topo.hops(0, 3) == 1
        assert topo.hops(0, 4) == 3
        assert topo.bandwidth_taper(0, 3) == 1.0
        assert topo.bandwidth_taper(0, 4) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DragonflyTopology(group_size=0)
        with pytest.raises(ValueError):
            DragonflyTopology(global_taper=0.9)


class TestRegistry:
    def test_get_topology_by_name(self):
        assert isinstance(get_topology("flat"), FlatTopology)
        assert isinstance(get_topology("fat-tree", radix=8), FatTreeTopology)
        assert isinstance(get_topology("torus-2d"), Torus2DTopology)
        assert isinstance(get_topology("dragonfly"), DragonflyTopology)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_topology("hypercube")

    def test_describe(self):
        desc = get_topology("fat-tree", radix=8, levels=2).describe()
        assert desc["radix"] == 8 and desc["levels"] == 2


# ----------------------------------------------------------------------
# Topology-aware machine
# ----------------------------------------------------------------------
class TestTopologyMachine:
    def test_is_a_machine_model(self):
        machine = make_topology_machine("flat")
        assert isinstance(machine, TopologyMachine)
        # Flat topology reproduces the base model's link costs exactly.
        base = perlmutter()
        assert machine.link(0, 1) == base.link(0, 1)          # intra-node
        assert machine.link(0, 5) == base.link(0, 5)          # inter-node

    def test_intra_node_unchanged_on_any_topology(self):
        machine = make_topology_machine("fat-tree", radix=2, taper=4.0)
        base = perlmutter()
        assert machine.link(0, 1) == (base.alpha_intra, base.beta_intra)

    def test_inter_node_latency_scales_with_hops(self):
        machine = make_topology_machine("fat-tree", radix=2, levels=4)
        base = perlmutter()
        # Ranks 0 and 4 live on nodes 0 and 1 (4 GPUs per node) -> same leaf.
        alpha_near, _ = machine.link(0, 4)
        # Ranks 0 and 16 live on nodes 0 and 4 -> higher in the tree.
        alpha_far, _ = machine.link(0, 16)
        assert alpha_far > alpha_near >= base.alpha_inter

    def test_bandwidth_taper_increases_beta(self):
        machine = make_topology_machine("dragonfly", group_size=2,
                                        global_taper=3.0)
        base = perlmutter()
        _, beta_local_group = machine.link(0, 4)    # nodes 0,1: same group
        _, beta_remote_group = machine.link(0, 8)   # nodes 0,2: other group
        assert beta_local_group == base.beta_inter
        assert beta_remote_group == pytest.approx(3.0 * base.beta_inter)

    def test_p2p_time_monotone_in_distance(self):
        machine = make_topology_machine("torus-2d", rows=4, cols=4)
        near = machine.p2p_time(0, 4, 1_000_000)     # adjacent nodes
        far = machine.p2p_time(0, 4 * 10, 1_000_000)  # distant nodes
        assert far >= near

    def test_rejects_kwargs_with_instance(self):
        with pytest.raises(ValueError):
            make_topology_machine(FlatTopology(), radix=4)

    def test_custom_base_machine(self):
        base = perlmutter().scaled(gpus_per_node=2)
        machine = make_topology_machine("flat", base=base)
        assert machine.gpus_per_node == 2
        assert machine.node_of(3) == 1

    def test_simulator_accepts_topology_machine(self, small_graph=None):
        """End-to-end: the sparsity-aware SpMM runs on a topology machine and
        a richer topology never makes communication cheaper."""
        graph = gcn_normalize(erdos_renyi_graph(32, avg_degree=6, seed=0))
        dist = BlockRowDistribution.uniform(32, 8)
        matrix = DistSparseMatrix(graph, dist)
        h = np.random.default_rng(0).normal(size=(32, 4))
        dense = DistDenseMatrix.from_global(h, dist)

        results = {}
        for name, machine in [
            ("flat", make_topology_machine("flat")),
            ("fat-tree", make_topology_machine("fat-tree", radix=2, levels=3,
                                               taper=2.0)),
        ]:
            comm = make_communicator(8, machine=machine)
            out = spmm_1d_sparsity_aware(matrix, dense, comm)
            np.testing.assert_allclose(out.to_global(), graph @ h, atol=1e-8)
            results[name] = comm.timeline.elapsed()
        assert results["fat-tree"] >= results["flat"]
