"""Unit tests for the COOMatrix / CSRMatrix containers and graph ops."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import erdos_renyi_graph
from repro.graphs.adjacency import gcn_normalize as gcn_normalize_scipy
from repro.sparse import (COOMatrix, CSRMatrix, add_self_loops, degrees,
                          gcn_normalize, is_symmetric, laplacian,
                          row_normalize)


def random_scipy(n_rows, n_cols, density, seed):
    rng = np.random.default_rng(seed)
    mat = sp.random(n_rows, n_cols, density=density, random_state=rng,
                    format="csr")
    mat.sort_indices()
    return mat


# ----------------------------------------------------------------------
# COOMatrix
# ----------------------------------------------------------------------
class TestCOOMatrix:
    def test_from_edges_unweighted(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        coo = COOMatrix.from_edges(3, edges)
        assert coo.nnz == 3
        np.testing.assert_allclose(coo.data, np.ones(3))

    def test_from_edges_empty(self):
        coo = COOMatrix.from_edges(4, np.empty((0, 2)))
        assert coo.nnz == 0
        assert coo.to_dense().shape == (4, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([0, 2]), np.array([0, 0]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), np.array([0]), np.array([0, 1]))

    def test_round_trip_scipy(self):
        mat = random_scipy(6, 9, 0.3, 0)
        coo = COOMatrix.from_scipy(mat)
        np.testing.assert_allclose(coo.to_scipy().toarray(), mat.toarray())

    def test_sum_duplicates(self):
        coo = COOMatrix((2, 2), np.array([0, 0, 1]), np.array([1, 1, 0]),
                        np.array([1.0, 2.0, 5.0]))
        merged = coo.sum_duplicates()
        assert merged.nnz == 2
        np.testing.assert_allclose(merged.to_dense(),
                                   [[0.0, 3.0], [5.0, 0.0]])

    def test_remove_self_loops(self):
        coo = COOMatrix((3, 3), np.array([0, 1, 2]), np.array([0, 2, 2]))
        out = coo.remove_self_loops()
        assert out.nnz == 1
        assert out.rows.tolist() == [1] and out.cols.tolist() == [2]

    def test_remove_self_loops_requires_square(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 3), np.array([0]), np.array([1])).remove_self_loops()

    def test_symmetrize_is_symmetric_and_binary(self):
        coo = COOMatrix((4, 4), np.array([0, 1, 2]), np.array([1, 2, 0]))
        symm = coo.symmetrize()
        dense = symm.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_symmetrize_empty(self):
        symm = COOMatrix.empty((3, 3)).symmetrize()
        assert symm.nnz == 0

    def test_transpose(self):
        mat = random_scipy(5, 8, 0.4, 3)
        coo = COOMatrix.from_scipy(mat)
        np.testing.assert_allclose(coo.transpose().to_dense(), mat.T.toarray())

    def test_to_csr_matches_scipy(self):
        mat = random_scipy(7, 7, 0.3, 5)
        csr = COOMatrix.from_scipy(mat).to_csr()
        np.testing.assert_allclose(csr.to_dense(), mat.toarray())


# ----------------------------------------------------------------------
# CSRMatrix
# ----------------------------------------------------------------------
class TestCSRMatrixConstruction:
    def test_from_scipy_round_trip(self):
        mat = random_scipy(8, 11, 0.3, 1)
        ours = CSRMatrix.from_scipy(mat)
        assert ours.nnz == mat.nnz
        np.testing.assert_allclose(ours.to_scipy().toarray(), mat.toarray())

    def test_from_dense(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 0.0]])
        ours = CSRMatrix.from_dense(dense)
        assert ours.nnz == 3
        np.testing.assert_allclose(ours.to_dense(), dense)

    def test_from_coo_arrays_sums_duplicates(self):
        ours = CSRMatrix.from_coo_arrays((2, 2), np.array([0, 0]),
                                         np.array([1, 1]), np.array([1.0, 2.0]))
        np.testing.assert_allclose(ours.to_dense(), [[0.0, 3.0], [0.0, 0.0]])

    def test_eye_and_zeros(self):
        eye = CSRMatrix.eye(4, value=2.0)
        np.testing.assert_allclose(eye.to_dense(), 2.0 * np.eye(4))
        zeros = CSRMatrix.zeros((3, 5))
        assert zeros.nnz == 0 and zeros.shape == (3, 5)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2]), np.array([0, 1]),
                      np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]),
                      np.array([1.0, 1.0]))

    def test_validation_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 2]),
                      np.array([1.0, 1.0]))


class TestCSRMatrixCompute:
    @pytest.fixture()
    def mat(self):
        return random_scipy(10, 7, 0.35, 9)

    def test_spmm_matches_scipy(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        h = np.random.default_rng(2).normal(size=(7, 5))
        np.testing.assert_allclose(ours.spmm(h), mat @ h, atol=1e-12)
        np.testing.assert_allclose(ours @ h, mat @ h, atol=1e-12)

    def test_spmv_matches_scipy(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        x = np.random.default_rng(2).normal(size=7)
        np.testing.assert_allclose(ours.spmv(x), mat @ x, atol=1e-12)
        np.testing.assert_allclose(ours @ x, mat @ x, atol=1e-12)

    def test_spmm_shape_check(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        with pytest.raises(ValueError):
            ours.spmm(np.ones((6, 2)))
        with pytest.raises(ValueError):
            ours.spmv(np.ones(6))

    def test_sparse_sparse_matmul_rejected(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        with pytest.raises(TypeError):
            ours @ ours

    def test_transpose(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        np.testing.assert_allclose(ours.T.to_dense(), mat.T.toarray())

    def test_row_slice(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        np.testing.assert_allclose(ours.row_slice(2, 7).to_dense(),
                                   mat[2:7].toarray())

    def test_column_select(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        cols = np.array([0, 3, 6])
        np.testing.assert_allclose(ours.column_select(cols).to_dense(),
                                   mat[:, cols].toarray())

    def test_nonzero_columns_and_compact(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        nz = ours.nonzero_columns()
        assert np.array_equal(
            nz, np.flatnonzero(np.asarray((mat != 0).sum(axis=0)).ravel()))
        compact, kept = ours.compact_columns()
        np.testing.assert_array_equal(kept, nz)
        np.testing.assert_allclose(compact.to_dense(), mat[:, nz].toarray())

    def test_compact_multiplication_equivalence(self, mat):
        """Multiplying the compacted block with the packed rows equals the
        full multiply — the identity the sparsity-aware algorithm relies on."""
        ours = CSRMatrix.from_scipy(mat)
        h = np.random.default_rng(4).normal(size=(7, 3))
        compact, kept = ours.compact_columns()
        np.testing.assert_allclose(compact.spmm(h[kept]), ours.spmm(h),
                                   atol=1e-12)

    def test_permute_symmetric(self):
        mat = random_scipy(6, 6, 0.4, 11)
        perm = np.random.default_rng(0).permutation(6)
        ours = CSRMatrix.from_scipy(mat).permute_symmetric(perm)
        expected = np.zeros((6, 6))
        dense = mat.toarray()
        expected[np.ix_(perm, perm)] = dense
        np.testing.assert_allclose(ours.to_dense(), expected)

    def test_permute_requires_square(self):
        ours = CSRMatrix.from_scipy(random_scipy(3, 4, 0.5, 0))
        with pytest.raises(ValueError):
            ours.permute_symmetric(np.arange(3))

    def test_scaling(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        r = np.arange(1.0, 11.0)
        c = np.arange(1.0, 8.0)
        np.testing.assert_allclose(ours.scale_rows(r).to_dense(),
                                   sp.diags(r) @ mat.toarray())
        np.testing.assert_allclose(ours.scale_cols(c).to_dense(),
                                   mat.toarray() @ sp.diags(c))

    def test_scaling_length_checks(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        with pytest.raises(ValueError):
            ours.scale_rows(np.ones(3))
        with pytest.raises(ValueError):
            ours.scale_cols(np.ones(3))

    def test_prune(self):
        dense = np.array([[1.0, 1e-14], [0.0, 2.0]])
        ours = CSRMatrix.from_dense(dense).prune(tol=1e-10)
        assert ours.nnz == 2

    def test_diagnostics(self, mat):
        ours = CSRMatrix.from_scipy(mat)
        np.testing.assert_array_equal(ours.row_nnz(), np.diff(mat.indptr))
        assert 0.0 < ours.density < 1.0
        assert ours.allclose(ours.copy())
        assert not ours.allclose(CSRMatrix.zeros(ours.shape))


# ----------------------------------------------------------------------
# Graph operations
# ----------------------------------------------------------------------
class TestSparseOps:
    @pytest.fixture()
    def graph(self):
        return erdos_renyi_graph(30, avg_degree=5, seed=3)

    def test_degrees(self, graph):
        ours = CSRMatrix.from_scipy(graph)
        np.testing.assert_allclose(degrees(ours),
                                   np.asarray(graph.sum(axis=1)).ravel())

    def test_is_symmetric(self, graph):
        assert is_symmetric(CSRMatrix.from_scipy(graph))
        asym = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert not is_symmetric(asym)
        assert not is_symmetric(CSRMatrix.zeros((2, 3)))

    def test_add_self_loops(self, graph):
        ours = add_self_loops(CSRMatrix.from_scipy(graph))
        np.testing.assert_allclose(ours.diagonal(), np.ones(graph.shape[0]))

    def test_gcn_normalize_matches_scipy_version(self, graph):
        ours = gcn_normalize(CSRMatrix.from_scipy(graph))
        ref = gcn_normalize_scipy(graph)
        np.testing.assert_allclose(ours.to_dense(), ref.toarray(), atol=1e-12)

    def test_gcn_normalize_handles_isolated_vertices(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = dense[1, 0] = 1.0
        ours = gcn_normalize(CSRMatrix.from_dense(dense), add_loops=False)
        assert np.all(np.isfinite(ours.to_dense()))

    def test_row_normalize_rows_sum_to_one(self, graph):
        ours = row_normalize(CSRMatrix.from_scipy(graph))
        sums = ours.to_dense().sum(axis=1)
        deg = np.asarray(graph.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[deg > 0], 1.0)

    def test_laplacian_row_sums_are_zero(self, graph):
        lap = laplacian(CSRMatrix.from_scipy(graph))
        np.testing.assert_allclose(lap.to_dense().sum(axis=1),
                                   np.zeros(graph.shape[0]), atol=1e-10)

    def test_normalized_laplacian_eigenvalue_range(self, graph):
        lap = laplacian(CSRMatrix.from_scipy(graph), normalized=True)
        eigvals = np.linalg.eigvalsh(lap.to_dense())
        assert eigvals.min() > -1e-8
        assert eigvals.max() < 2.0 + 1e-8

    def test_shape_checks(self):
        rect = CSRMatrix.zeros((2, 3))
        with pytest.raises(ValueError):
            degrees(rect)
        with pytest.raises(ValueError):
            add_self_loops(rect)
        with pytest.raises(ValueError):
            row_normalize(rect)
        with pytest.raises(ValueError):
            laplacian(rect)
