"""Tests for the 1.5D distributed SpMM algorithms and the process grid."""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        ProcessGrid, spmm_15d_oblivious, spmm_15d_sparsity_aware,
                        spmm_1d_sparsity_aware)
from repro.graphs import gcn_normalize
from repro.graphs.generators import erdos_renyi_graph


def make_problem(n, nblocks, f=5, seed=0):
    adj = gcn_normalize(erdos_renyi_graph(n, avg_degree=6, seed=seed))
    dist = BlockRowDistribution.uniform(n, nblocks)
    rng = np.random.default_rng(seed)
    h = rng.normal(size=(n, f))
    return adj, DistSparseMatrix(adj, dist), \
        DistDenseMatrix.from_global(h, dist), h


class TestProcessGrid:
    def test_valid_grid(self):
        grid = ProcessGrid(nranks=8, replication=2)
        assert grid.nrows == 4
        assert grid.stages == 2

    def test_rank_and_coords_roundtrip(self):
        grid = ProcessGrid(nranks=8, replication=2)
        for r in range(8):
            i, j = grid.coords(r)
            assert grid.rank(i, j) == r

    def test_groups(self):
        grid = ProcessGrid(nranks=8, replication=2)
        assert grid.row_group(1) == [2, 3]
        assert grid.col_group(0) == [0, 2, 4, 6]
        assert grid.col_group(1) == [1, 3, 5, 7]

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            ProcessGrid(nranks=8, replication=3)    # does not divide
        with pytest.raises(ValueError):
            ProcessGrid(nranks=8, replication=4)    # c does not divide P/c
        with pytest.raises(ValueError):
            ProcessGrid(nranks=8, replication=0)

    def test_out_of_range_access(self):
        grid = ProcessGrid(nranks=4, replication=2)
        with pytest.raises(ValueError):
            grid.rank(5, 0)
        with pytest.raises(ValueError):
            grid.coords(4)

    def test_c1_degenerates_to_1d_layout(self):
        grid = ProcessGrid(nranks=4, replication=1)
        assert grid.nrows == 4
        assert grid.stages == 4
        assert grid.row_group(2) == [2]


class TestCorrectness:
    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (16, 2), (16, 4)])
    def test_oblivious_matches_serial(self, p, c):
        grid = ProcessGrid(nranks=p, replication=c)
        adj, dm, dh, h = make_problem(n=64, nblocks=grid.nrows, seed=1)
        comm = make_communicator(p)
        result = spmm_15d_oblivious(dm, dh, grid, comm)
        np.testing.assert_allclose(result.to_global(), adj @ h, atol=1e-10)

    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (16, 2), (16, 4)])
    def test_sparsity_aware_matches_serial(self, p, c):
        grid = ProcessGrid(nranks=p, replication=c)
        adj, dm, dh, h = make_problem(n=64, nblocks=grid.nrows, seed=2)
        comm = make_communicator(p)
        result = spmm_15d_sparsity_aware(dm, dh, grid, comm)
        np.testing.assert_allclose(result.to_global(), adj @ h, atol=1e-10)

    def test_15d_c1_matches_1d(self):
        """With replication factor 1 the 1.5D algorithm computes the same
        result as the 1D algorithm (the paper notes they coincide)."""
        p = 4
        grid = ProcessGrid(nranks=p, replication=1)
        adj, dm, dh, h = make_problem(n=48, nblocks=p, seed=3)
        a = spmm_15d_sparsity_aware(dm, dh, grid, make_communicator(p))
        b = spmm_1d_sparsity_aware(dm, dh, make_communicator(p))
        np.testing.assert_allclose(a.to_global(), b.to_global(), atol=1e-10)

    def test_grid_matrix_mismatch_rejected(self):
        grid = ProcessGrid(nranks=8, replication=2)   # 4 block rows
        adj, dm, dh, h = make_problem(n=64, nblocks=8, seed=0)
        with pytest.raises(ValueError):
            spmm_15d_oblivious(dm, dh, grid, make_communicator(8))

    def test_comm_size_mismatch_rejected(self):
        grid = ProcessGrid(nranks=8, replication=2)
        adj, dm, dh, h = make_problem(n=64, nblocks=4, seed=0)
        with pytest.raises(ValueError):
            spmm_15d_sparsity_aware(dm, dh, grid, make_communicator(4))


class TestCommunicationBehaviour:
    def test_sparsity_aware_sends_fewer_bytes_for_h(self):
        grid = ProcessGrid(nranks=8, replication=2)
        adj, dm, dh, _ = make_problem(n=96, nblocks=4, seed=4)
        comm_ob = make_communicator(8)
        comm_sa = make_communicator(8)
        spmm_15d_oblivious(dm, dh, grid, comm_ob)
        spmm_15d_sparsity_aware(dm, dh, grid, comm_sa)
        assert comm_sa.stats.total_bytes("alltoall") <= \
            comm_ob.stats.total_bytes("bcast")

    def test_allreduce_volume_identical_between_variants(self):
        grid = ProcessGrid(nranks=8, replication=2)
        adj, dm, dh, _ = make_problem(n=96, nblocks=4, seed=5)
        comm_ob = make_communicator(8)
        comm_sa = make_communicator(8)
        spmm_15d_oblivious(dm, dh, grid, comm_ob)
        spmm_15d_sparsity_aware(dm, dh, grid, comm_sa)
        assert comm_ob.stats.total_bytes("allreduce") == \
            comm_sa.stats.total_bytes("allreduce")
        assert comm_ob.stats.total_bytes("allreduce") > 0

    def test_no_allreduce_traffic_when_c_is_1(self):
        grid = ProcessGrid(nranks=4, replication=1)
        adj, dm, dh, _ = make_problem(n=48, nblocks=4, seed=6)
        comm = make_communicator(4)
        spmm_15d_sparsity_aware(dm, dh, grid, comm)
        # A single-member group all-reduce moves no data.
        assert comm.stats.total_bytes("allreduce") == 0

    def test_replication_reduces_exchange_volume(self):
        """Increasing c reduces the amount of H data moved between ranks
        (each replica handles fewer stages) — the communication-avoiding
        effect of the 1.5D algorithm."""
        adj, _, _, h = make_problem(n=96, nblocks=1, seed=7)
        volumes = {}
        for c in (1, 2):
            nranks = 8
            grid = ProcessGrid(nranks=nranks, replication=c)
            dist = BlockRowDistribution.uniform(96, grid.nrows)
            dm = DistSparseMatrix(adj, dist)
            dh = DistDenseMatrix.from_global(h, dist)
            comm = make_communicator(nranks)
            spmm_15d_oblivious(dm, dh, grid, comm)
            volumes[c] = comm.stats.total_bytes("bcast")
        assert volumes[2] < volumes[1]
