"""Tests for the analytical cost model and the memory/OOM model."""

import numpy as np
import pytest

from repro.comm import make_communicator, perlmutter
from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        DistTrainConfig, MemoryEstimate,
                        best_replication_factor, crossover_process_count,
                        epoch_cost, estimate_rank_memory,
                        feasible_process_counts, fits_in_memory,
                        spmm_1d_sparsity_aware, spmm_cost_15d_oblivious,
                        spmm_cost_15d_sparsity_aware, spmm_cost_1d_oblivious,
                        spmm_cost_1d_sparsity_aware)
from repro.core.analysis import ELEMENT_BYTES
from repro.graphs import (community_ring_graph, erdos_renyi_graph,
                          gcn_normalize)
from repro.partition import get_partitioner


@pytest.fixture(scope="module")
def graph():
    return gcn_normalize(community_ring_graph(80, avg_degree=8,
                                              n_communities=8,
                                              p_external=0.05, seed=2))


def dist_matrix(graph, nblocks):
    dist = BlockRowDistribution.uniform(graph.shape[0], nblocks)
    return DistSparseMatrix(graph, dist)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestSpMMCosts:
    def test_sparsity_aware_never_costs_more_bandwidth(self, graph):
        for p in (2, 4, 8):
            matrix = dist_matrix(graph, p)
            aware = spmm_cost_1d_sparsity_aware(matrix, 16, "perlmutter")
            oblivious = spmm_cost_1d_oblivious(matrix, 16, "perlmutter")
            # The SA bandwidth term uses (P-1) * max pairwise cut, which by
            # construction is at most the full block-row broadcast volume.
            assert aware.bandwidth_s <= oblivious.bandwidth_s * (1 + 1e-9)

    def test_oblivious_bandwidth_independent_of_p(self, graph):
        costs = [spmm_cost_1d_oblivious(dist_matrix(graph, p), 16,
                                        "perlmutter").bandwidth_s
                 for p in (2, 4, 8)]
        assert costs[0] == pytest.approx(costs[1], rel=1e-9)
        assert costs[1] == pytest.approx(costs[2], rel=1e-9)

    def test_partitioning_reduces_predicted_sa_cost(self, graph):
        """A good partition shrinks cut_P(G) and hence the predicted SA time."""
        p = 8
        natural = dist_matrix(graph, p)
        part = get_partitioner("gvb", seed=0).partition(graph, p)
        from repro.graphs.adjacency import (permutation_from_parts,
                                            symmetric_permutation)
        perm = permutation_from_parts(part.parts, p)
        permuted = symmetric_permutation(graph, perm)
        partitioned = DistSparseMatrix(
            permuted, BlockRowDistribution.from_partition(part.part_sizes()))
        cost_natural = spmm_cost_1d_sparsity_aware(natural, 16, "perlmutter")
        cost_partitioned = spmm_cost_1d_sparsity_aware(partitioned, 16,
                                                       "perlmutter")
        assert cost_partitioned.bandwidth_s <= cost_natural.bandwidth_s

    def test_feature_width_scales_bandwidth_linearly(self, graph):
        matrix = dist_matrix(graph, 4)
        narrow = spmm_cost_1d_sparsity_aware(matrix, 8, "perlmutter")
        wide = spmm_cost_1d_sparsity_aware(matrix, 16, "perlmutter")
        assert wide.bandwidth_s == pytest.approx(2 * narrow.bandwidth_s)
        assert wide.latency_s == pytest.approx(narrow.latency_s)

    def test_single_rank_is_communication_free(self, graph):
        matrix = dist_matrix(graph, 1)
        cost = spmm_cost_1d_sparsity_aware(matrix, 16, "perlmutter")
        assert cost.communication_s == 0.0
        assert cost.compute_s > 0.0

    def test_15d_replication_reduces_bandwidth_term(self, graph):
        p = 16
        cost_c2 = spmm_cost_15d_sparsity_aware(dist_matrix(graph, p // 2), 16,
                                               p, 2, "perlmutter")
        cost_c4 = spmm_cost_15d_sparsity_aware(dist_matrix(graph, p // 4), 16,
                                               p, 4, "perlmutter")
        # More replication -> fewer stages -> smaller point-to-point term,
        # at the price of a bigger all-reduce.
        assert cost_c4.bandwidth_s <= cost_c2.bandwidth_s
        assert cost_c4.reduction_s >= cost_c2.reduction_s * 0.99

    def test_15d_validation(self, graph):
        with pytest.raises(ValueError):
            spmm_cost_15d_oblivious(dist_matrix(graph, 8), 16, 16, 3,
                                    "perlmutter")
        with pytest.raises(ValueError):
            spmm_cost_15d_sparsity_aware(dist_matrix(graph, 4), 16, 16, 2,
                                         "perlmutter")

    def test_invalid_feature_width(self, graph):
        with pytest.raises(ValueError):
            spmm_cost_1d_oblivious(dist_matrix(graph, 4), 0, "perlmutter")

    def test_breakdown_dict(self, graph):
        cost = spmm_cost_1d_sparsity_aware(dist_matrix(graph, 4), 16,
                                           "perlmutter")
        d = cost.as_dict()
        assert d["total_s"] == pytest.approx(cost.total_s)
        assert d["communication_s"] == pytest.approx(
            cost.latency_s + cost.bandwidth_s + cost.reduction_s)


class TestPredictedVsSimulated:
    def test_sa_bandwidth_prediction_brackets_simulated_alltoall_bytes(self, graph):
        """The model's bandwidth term uses the max pairwise cut; the
        simulator's per-rank all-to-all traffic must be consistent with it
        (no rank exchanges more than (P-1) * cut * f * 8 bytes)."""
        p, f = 8, 6
        matrix = dist_matrix(graph, p)
        dense = DistDenseMatrix.from_global(
            np.random.default_rng(0).normal(size=(graph.shape[0], f)),
            matrix.dist)
        comm = make_communicator(p, machine="perlmutter")
        spmm_1d_sparsity_aware(matrix, dense, comm)
        cut = matrix.needed_rows_matrix().max()
        bound = (p - 1) * cut * f * ELEMENT_BYTES
        sends = comm.events.bytes_sent_by_rank(p, category="alltoall")
        assert sends.max() <= bound + 1e-6


class TestEpochCost:
    def test_epoch_cost_sums_two_spmms_per_layer(self, graph):
        matrix = dist_matrix(graph, 4)
        dims = [12, 16, 4]
        epoch = epoch_cost(matrix, dims, "perlmutter")
        singles = sum(
            spmm_cost_1d_sparsity_aware(matrix, f, "perlmutter").total_s
            for l in range(1, len(dims)) for f in (dims[l - 1], dims[l]))
        assert epoch.total_s == pytest.approx(singles)

    def test_epoch_cost_15d_requires_nranks(self, graph):
        with pytest.raises(ValueError):
            epoch_cost(dist_matrix(graph, 4), [8, 4], "perlmutter",
                       algorithm="1.5d")

    def test_epoch_cost_unknown_algorithm(self, graph):
        with pytest.raises(ValueError):
            epoch_cost(dist_matrix(graph, 4), [8, 4], "perlmutter",
                       algorithm="2.5d")

    def test_layer_dims_validation(self, graph):
        with pytest.raises(ValueError):
            epoch_cost(dist_matrix(graph, 4), [8], "perlmutter")


class TestCrossoverAndReplication:
    def test_crossover_exists_for_community_graph(self, graph):
        p = crossover_process_count(graph, f=16, p_values=(2, 4, 8, 16),
                                    machine="perlmutter")
        assert p in (2, 4, 8, 16)

    def test_crossover_with_partitions(self, graph):
        parts = {p: get_partitioner("metis_like", seed=0).partition(graph, p).parts
                 for p in (4, 8)}
        p = crossover_process_count(graph, f=16, p_values=(4, 8),
                                    machine="perlmutter",
                                    partitioner_parts=parts)
        assert p in (4, 8)

    def test_crossover_none_when_never_better(self):
        # A dense-ish small graph at tiny p: SA pays p2p latency and the cut
        # is nearly the whole block, so it may never win; accept either
        # outcome but make sure the function handles the range cleanly.
        graph = gcn_normalize(erdos_renyi_graph(16, avg_degree=12, seed=0))
        result = crossover_process_count(graph, f=4, p_values=(2,),
                                         machine="perlmutter")
        assert result in (None, 2)

    def test_best_replication_factor(self, graph):
        def builder(c):
            return dist_matrix(graph, 16 // c)
        best = best_replication_factor(builder, f=16, nranks=16,
                                       machine="perlmutter",
                                       candidates=(1, 2, 4))
        assert best in (1, 2, 4)

    def test_best_replication_factor_no_candidates(self, graph):
        with pytest.raises(ValueError):
            best_replication_factor(lambda c: dist_matrix(graph, 4), f=16,
                                    nranks=6, machine="perlmutter",
                                    candidates=(4,))


# ----------------------------------------------------------------------
# Memory model
# ----------------------------------------------------------------------
class TestMemoryModel:
    def paper_scale_config(self, p, **kwargs):
        return DistTrainConfig(n_ranks=p, epochs=1, **kwargs)

    def test_estimate_fields_positive(self):
        est = estimate_rank_memory(100_000, 5_000_000, 300, 24,
                                   self.paper_scale_config(16))
        assert est.total_bytes > 0
        for value in est.as_dict().values():
            assert value >= 0

    def test_more_ranks_less_memory_per_rank(self):
        est4 = estimate_rank_memory(1_000_000, 50_000_000, 300, 24,
                                    self.paper_scale_config(4))
        est64 = estimate_rank_memory(1_000_000, 50_000_000, 300, 24,
                                     self.paper_scale_config(64))
        assert est64.total_bytes < est4.total_bytes

    def test_amazon_at_p4_exceeds_a100_but_p16_fits(self):
        """Reproduces the paper's missing data point: Amazon (14.2M vertices,
        231M edges, f=300) does not fit on 4 A100s but fits on 16."""
        vertices, edges_stored = 14_249_639, 2 * 230_788_269
        small = estimate_rank_memory(vertices, edges_stored, 300, 24,
                                     self.paper_scale_config(4))
        large = estimate_rank_memory(vertices, edges_stored, 300, 24,
                                     self.paper_scale_config(16))
        assert not fits_in_memory(small, "perlmutter")
        assert fits_in_memory(large, "perlmutter")

    def test_feasible_process_counts_filters_oom(self):
        vertices, edges_stored = 14_249_639, 2 * 230_788_269
        feasible = feasible_process_counts(vertices, edges_stored, 300, 24,
                                           p_values=(4, 16, 32, 64),
                                           machine="perlmutter")
        assert 4 not in feasible
        assert 64 in feasible

    def test_replication_increases_footprint(self):
        base = estimate_rank_memory(100_000, 5_000_000, 128, 16,
                                    self.paper_scale_config(16))
        replicated = estimate_rank_memory(
            100_000, 5_000_000, 128, 16,
            self.paper_scale_config(16, algorithm="1.5d",
                                    replication_factor=2))
        assert replicated.total_bytes > base.total_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_rank_memory(0, 10, 8, 2, self.paper_scale_config(2))
        est = MemoryEstimate(1, 1, 1, 1, 1, 0, 0)
        with pytest.raises(ValueError):
            fits_in_memory(est, "perlmutter", safety_factor=0.0)
