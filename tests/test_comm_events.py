"""Tests for repro.comm.events."""

import numpy as np
import pytest

from repro.comm.events import CommEvent, EventLog


class TestCommEvent:
    def test_valid_event(self):
        e = CommEvent("p2p", 0, 1, 128, "alltoall", 0)
        assert e.nbytes == 128

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CommEvent("p2p", 0, 1, -1, "alltoall", 0)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            CommEvent("p2p", -1, 1, 10, "alltoall", 0)


class TestEventLog:
    def test_record_and_len(self):
        log = EventLog()
        log.record_message("bcast", 0, 1, 100, "bcast")
        log.record_message("bcast", 0, 2, 100, "bcast")
        assert len(log) == 2
        assert log.message_count() == 2

    def test_steps_monotone(self):
        log = EventLog()
        s0 = log.next_step()
        s1 = log.next_step()
        assert s1 == s0 + 1

    def test_record_message_shares_step_when_given(self):
        log = EventLog()
        step = log.next_step()
        e1 = log.record_message("alltoallv", 0, 1, 10, "alltoall", step)
        e2 = log.record_message("alltoallv", 1, 0, 20, "alltoall", step)
        assert e1.step == e2.step == step

    def test_filtered_by_kind_and_category(self):
        log = EventLog()
        log.record_message("bcast", 0, 1, 5, "bcast")
        log.record_message("p2p", 1, 2, 7, "alltoall")
        assert len(log.filtered(kind="bcast")) == 1
        assert len(log.filtered(category="alltoall")) == 1
        assert len(log.filtered(src=1, dst=2)) == 1
        assert log.filtered(kind="allreduce") == []

    def test_total_bytes_and_per_category(self):
        log = EventLog()
        log.record_message("bcast", 0, 1, 5, "bcast")
        log.record_message("p2p", 1, 2, 7, "alltoall")
        assert log.total_bytes() == 12
        assert log.total_bytes("bcast") == 5

    def test_bytes_by_rank_vectors(self):
        log = EventLog()
        log.record_message("p2p", 0, 1, 10, "x")
        log.record_message("p2p", 0, 2, 30, "x")
        log.record_message("p2p", 2, 0, 5, "x")
        sent = log.bytes_sent_by_rank(3)
        recv = log.bytes_received_by_rank(3)
        assert sent.tolist() == [40, 0, 5]
        assert recv.tolist() == [5, 10, 30]

    def test_traffic_matrix_matches_vectors(self):
        log = EventLog()
        log.record_message("p2p", 0, 1, 10, "x")
        log.record_message("p2p", 1, 0, 3, "x")
        log.record_message("p2p", 0, 1, 2, "x")
        mat = log.traffic_matrix(2)
        assert mat[0, 1] == 12
        assert mat[1, 0] == 3
        assert mat.sum() == log.total_bytes()

    def test_clear_resets_everything(self):
        log = EventLog()
        log.record_message("p2p", 0, 1, 10, "x")
        log.clear()
        assert len(log) == 0
        assert log.next_step() == 0

    def test_merge_rebases_steps(self):
        a = EventLog()
        a.record_message("p2p", 0, 1, 1, "x")
        b = EventLog()
        b.record_message("p2p", 1, 0, 2, "y")
        b.record_message("p2p", 1, 0, 3, "y")
        a.merge(b)
        assert len(a) == 3
        steps = [e.step for e in a]
        assert len(set(steps)) == 3
        assert a.total_bytes() == 6

    def test_iteration_yields_events_in_order(self):
        log = EventLog()
        log.record_message("p2p", 0, 1, 1, "x")
        log.record_message("p2p", 0, 1, 2, "x")
        sizes = [e.nbytes for e in log]
        assert sizes == [1, 2]
