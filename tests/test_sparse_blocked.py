"""Tests for the BlockedCSR block-grid analysis (from-scratch NnzCols)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import BlockRowDistribution, DistSparseMatrix
from repro.graphs import community_ring_graph, erdos_renyi_graph, gcn_normalize
from repro.sparse import BlockedCSR, CSRMatrix, block_bounds


@pytest.fixture()
def graph():
    return gcn_normalize(erdos_renyi_graph(36, avg_degree=6, seed=2))


class TestBlockBounds:
    def test_balanced_bounds(self):
        bounds = block_bounds(10, 4)
        assert bounds.tolist() == [0, 3, 6, 8, 10]

    def test_exact_division(self):
        assert block_bounds(8, 4).tolist() == [0, 2, 4, 6, 8]

    def test_more_blocks_than_rows(self):
        bounds = block_bounds(2, 4)
        assert bounds[-1] == 2 and bounds.size == 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            block_bounds(-1, 2)
        with pytest.raises(ValueError):
            block_bounds(4, 0)


class TestBlockedCSR:
    def test_requires_square(self):
        with pytest.raises(ValueError):
            BlockedCSR.uniform(CSRMatrix.zeros((3, 4)), 2)

    def test_bad_bounds_rejected(self, graph):
        mat = CSRMatrix.from_scipy(graph)
        with pytest.raises(ValueError):
            BlockedCSR(mat, [0, 10, 5, 36])
        with pytest.raises(ValueError):
            BlockedCSR(mat, [1, 36])

    def test_block_shapes_and_nnz(self, graph):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 4)
        total_nnz = 0
        for i in range(4):
            for j in range(4):
                blk = blocked.block(i, j)
                assert blk.full.shape == (blocked.block_size(i),
                                          blocked.block_size(j))
                assert blk.compact.shape[1] == blk.n_needed_rows
                total_nnz += blk.nnz
        assert total_nnz == graph.nnz

    def test_block_out_of_range(self, graph):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 3)
        with pytest.raises(ValueError):
            blocked.block(3, 0)

    def test_nnz_cols_match_dist_sparse_matrix(self, graph):
        """The from-scratch analysis agrees with the scipy-backed one."""
        nblocks = 4
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), nblocks)
        dist = BlockRowDistribution.uniform(graph.shape[0], nblocks)
        reference = DistSparseMatrix(graph, dist)
        for i in range(nblocks):
            for j in range(nblocks):
                np.testing.assert_array_equal(
                    blocked.nnz_cols(i, j), reference.nnz_cols(i, j))
        np.testing.assert_array_equal(blocked.needed_rows_matrix(),
                                      reference.needed_rows_matrix())

    def test_global_column_indices(self, graph):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 3)
        blk = blocked.block(0, 1)
        assert np.all(blk.nnz_cols_global >= blocked.bounds[1])
        assert np.all(blk.nnz_cols_global < blocked.bounds[2])

    @pytest.mark.parametrize("use_compact", [True, False])
    def test_blockwise_spmm_matches_direct(self, graph, use_compact):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 5)
        h = np.random.default_rng(0).normal(size=(graph.shape[0], 4))
        direct = graph @ h
        np.testing.assert_allclose(blocked.spmm(h, use_compact=use_compact),
                                   direct, atol=1e-10)

    def test_spmm_shape_check(self, graph):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 3)
        with pytest.raises(ValueError):
            blocked.spmm(np.ones((5, 2)))

    def test_volume_accounting(self, graph):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 4)
        needed = blocked.needed_rows_matrix()
        np.testing.assert_array_equal(blocked.send_volumes(), needed.sum(axis=0))
        np.testing.assert_array_equal(blocked.recv_volumes(), needed.sum(axis=1))
        assert blocked.total_volume() == int(needed.sum())
        # The sparsity-aware exchange never moves more rows than the
        # oblivious broadcast of entire block rows.
        assert blocked.total_volume() <= blocked.oblivious_rows_matrix().sum()
        assert blocked.savings_ratio() >= 1.0

    def test_savings_ratio_on_block_diagonal_graph(self):
        """A graph with no cross-block edges needs zero communication."""
        graph = community_ring_graph(40, avg_degree=6, n_communities=4,
                                     p_external=0.0, seed=1)
        # 4 communities of equal size laid out contiguously -> 4 blocks
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph.tocsr()), 4)
        if blocked.total_volume() == 0:
            assert blocked.savings_ratio() == float("inf") or \
                blocked.oblivious_rows_matrix().sum() == 0
        else:
            assert blocked.savings_ratio() > 1.0

    def test_single_block_degenerate(self, graph):
        blocked = BlockedCSR.uniform(CSRMatrix.from_scipy(graph), 1)
        assert blocked.total_volume() == 0
        h = np.random.default_rng(1).normal(size=(graph.shape[0], 3))
        np.testing.assert_allclose(blocked.spmm(h), graph @ h, atol=1e-10)
