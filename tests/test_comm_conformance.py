"""Cross-backend conformance matrix: contract suite × property layer.

Part 1 drives every check registered in :mod:`comm_conformance` against
every backend in ``CONFORMANT_BACKENDS`` (sim, threaded, process) — the
full collective/topology/accounting/lifecycle contract.

Part 2 is the randomized equivalence net: Hypothesis generates sparse
matrices (arbitrary sparsity patterns, including empty and dense-ish
ones), feature widths, block counts and rank counts, and every registered
(algorithm × sparsity-mode) SpMM variant must produce **bitwise
identical** ``Z = M H`` on all three backends — plus a direct property
asserting the collectives themselves return bit-identical payloads.

Run standalone with ``pytest -m conformance``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import comm_conformance as cc
from repro.comm import make_communicator
from repro.comm.process import ProcessPoolCommunicator
from repro.core import (BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, Dist2DSparseMatrix, Grid2D,
                        ProcessGrid, spmm)
from repro.core.engine import DenseSpec, compile as compile_spmm

pytestmark = pytest.mark.conformance

SETTINGS = dict(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Part 1: the contract suite, parametrized over (backend, check)
# ----------------------------------------------------------------------
@pytest.fixture(params=cc.CONFORMANT_BACKENDS)
def backend(request):
    return request.param


@pytest.fixture()
def make(backend):
    """Factory for tracked communicators of the backend under test."""
    created = []

    def factory(nranks=4, **kwargs):
        comm = make_communicator(nranks, backend=backend, **kwargs)
        created.append(comm)
        return comm

    yield factory
    for comm in created:
        comm.close()


@pytest.mark.parametrize("check", sorted(cc.CONTRACT_CHECKS))
def test_contract(make, check):
    cc.CONTRACT_CHECKS[check](make)


def test_registry_covers_all_backends():
    """Every factory-registered backend is in the proof net: registering a
    new backend without adding it to CONFORMANT_BACKENDS fails here."""
    from repro.comm import available_backends
    assert set(available_backends()) == set(cc.CONFORMANT_BACKENDS)
    assert len(cc.CONTRACT_CHECKS) >= 20


class TestProcessBackendSpecifics:
    """Properties only the multi-process backend guarantees."""

    def test_workers_are_distinct_processes(self):
        import os
        with make_communicator(3, backend="process") as comm:
            comm.broadcast(np.ones(4), root=0)
            pids = {p.pid for p in comm._procs}
            assert len(pids) == 3
            assert os.getpid() not in pids

    def test_delivered_payloads_are_reconstructed_from_bytes(self):
        """No aliasing can survive a process boundary: received arrays own
        fresh memory, so mutating them cannot corrupt the sender."""
        with make_communicator(3, backend="process") as comm:
            value = np.arange(6.0)
            out = comm.broadcast(value, root=0)
            out[1][:] = -1.0
            assert value[0] == 0.0
            assert out[1].base is None

    def test_close_releases_shared_memory(self):
        from multiprocessing import shared_memory
        comm = make_communicator(3, backend="process")
        comm.allreduce([np.ones(16)] * 3)
        names = [a.shm.name for a in comm._arenas.values()]
        assert names, "collective must have staged shared-memory arenas"
        comm.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_joins_workers(self):
        comm = make_communicator(2, backend="process")
        comm.barrier()
        procs = list(comm._procs)
        comm.close()
        assert all(not p.is_alive() for p in procs)
        assert comm._procs is None

    def test_worker_failure_reports_traceback_and_recovers(self):
        with make_communicator(2, backend="process") as comm:
            comm.allreduce([np.ones(4)] * 2)
            # Sabotage: a plan referencing a nonexistent arena makes the
            # worker raise; the traceback must surface in the driver and
            # the worker must stay usable afterwards.
            with pytest.raises(RuntimeError, match="worker failed"):
                comm._run_step(
                    [0, 1],
                    [comm._plan([(0, "send", "rprnope", 10**9)]),
                     comm._plan(())],
                    "test")
            out = comm.allreduce([np.ones(4)] * 2)
            np.testing.assert_array_equal(out[0], np.full(4, 2.0))

    def test_timeout_is_configurable(self):
        with pytest.raises(ValueError):
            ProcessPoolCommunicator(2, timeout_s=0.0)
        comm = ProcessPoolCommunicator(2, timeout_s=123.0, machine="laptop")
        try:
            assert comm.timeout_s == 123.0
        finally:
            comm.close()

    def test_close_with_inflight_handle_releases_shared_memory(self):
        """Interrupting a run with a collective in flight must not leak
        shm segments: close() drains the handle (its result stays
        readable) and unlinks every arena, including the nonblocking
        slot arenas."""
        from multiprocessing import shared_memory
        comm = make_communicator(3, backend="process")
        value = np.arange(32.0)
        handle = comm.ibroadcast(value, root=0)
        names = [a.shm.name for a in comm._arenas.values()]
        assert names, "the posted collective must have staged arenas"
        comm.close()
        out = handle.wait()
        np.testing.assert_array_equal(out[2], value)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_nonblocking_uses_second_arena_slot(self):
        """Nonblocking collectives stream through dedicated slot arenas
        (kinds 'send0'/'recv0'/'send1'/'recv1'), so an in-flight payload
        can never be clobbered by the next blocking collective's staging."""
        with make_communicator(2, backend="process") as comm:
            handle = comm.ibroadcast(np.arange(8.0), root=0)
            kinds = {kind for _, kind in comm._arenas}
            assert {"send0", "recv0"} <= kinds
            # A blocking collective while the handle is in flight stages
            # into the separate blocking arenas and drains the handle's
            # responses first (queue lockstep).
            out = comm.allreduce([np.full(4, 1.0)] * 2)
            np.testing.assert_array_equal(out[0], np.full(4, 2.0))
            np.testing.assert_array_equal(handle.wait()[1], np.arange(8.0))
            kinds = {kind for _, kind in comm._arenas}
            assert {"send", "recv"} <= kinds
            # The slots alternate: a second nonblocking op claims slot 1.
            comm.ibroadcast(np.arange(8.0), root=1).wait()
            kinds = {kind for _, kind in comm._arenas}
            assert {"send1", "recv1"} <= kinds

    def test_lost_worker_closes_communicator(self):
        """A watchdog timeout leaves no chance of pairing the lost
        worker's late response with a later collective: the communicator
        is closed and further use fails loudly."""
        comm = ProcessPoolCommunicator(2, timeout_s=0.3)
        # Dispatch a 2-member barrier to only one member: that worker
        # waits ~1 s for its (never-arriving) peer, far past the driver's
        # 0.3 s watchdog.
        stuck = {"op": "barrier", "group": [0, 1], "bid": 0,
                 "timeout_s": 1.0}
        with pytest.raises(RuntimeError, match="did not finish"):
            comm._run_step([0], [stuck], "wait")
        with pytest.raises(RuntimeError, match="closed"):
            comm.allreduce([np.ones(2)] * 2)
        comm.close()  # still idempotent after the automatic close


# ----------------------------------------------------------------------
# Part 2: randomized SpMM equivalence properties
# ----------------------------------------------------------------------
@st.composite
def spmm_problem(draw, min_n=8, max_n=36):
    """A random symmetric sparse matrix and dense operand."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.35))
    f = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = sp.random(n, n, density=density, random_state=rng, format="csr")
    mat = mat + mat.T
    mat.setdiag(0)
    mat.eliminate_zeros()
    h = rng.normal(size=(n, f))
    return mat.tocsr().astype(np.float64), h


def _run_all_backends(matrix, dense, grid, algorithm, mode, p):
    """Run one variant on every conformant backend; return {backend: Z}.

    Each backend runs the uncompiled path, a compiled plan called twice
    (fresh input both times), *and* a double-buffered compiled plan
    (``pipeline_depth=2``: staged exchanges prefetched with nonblocking
    collectives) — both compiled results must be bitwise identical to
    the uncompiled one on the same backend, which closes the
    (variant x backend x pipelining) compiled-equivalence matrix over
    randomized inputs.
    """
    results = {}
    for backend in cc.CONFORMANT_BACKENDS:
        comm = make_communicator(p, backend=backend)
        try:
            z = spmm(matrix, dense, comm, algorithm=algorithm,
                     sparsity_aware=(mode == "sparsity_aware"), grid=grid)
            z_global = z if isinstance(z, np.ndarray) else z.to_global()
            op = compile_spmm(matrix, DenseSpec.like(dense), comm,
                              algorithm=algorithm,
                              sparsity_aware=(mode == "sparsity_aware"),
                              grid=grid)
            for repeat in range(2):   # plan reuse must not leak state
                zc = op(dense)
                zc_global = np.array(zc) if isinstance(zc, np.ndarray) \
                    else zc.to_global()
                np.testing.assert_array_equal(
                    zc_global, z_global,
                    err_msg=f"compiled {algorithm}/{mode} call {repeat} "
                            f"diverged from uncompiled on {backend!r}")
            piped = compile_spmm(matrix, DenseSpec.like(dense), comm,
                                 algorithm=algorithm,
                                 sparsity_aware=(mode == "sparsity_aware"),
                                 grid=grid, pipeline_depth=2)
            zp = piped(dense)
            zp_global = np.array(zp) if isinstance(zp, np.ndarray) \
                else zp.to_global()
            np.testing.assert_array_equal(
                zp_global, z_global,
                err_msg=f"pipelined {algorithm}/{mode} diverged from the "
                        f"synchronous path on {backend!r}")
        finally:
            comm.close()
        results[backend] = z_global
    return results


def _assert_bit_identical(results, reference):
    baseline = results["sim"]
    np.testing.assert_allclose(baseline, reference, atol=1e-10)
    for backend, z in results.items():
        np.testing.assert_array_equal(
            z, baseline,
            err_msg=f"backend {backend!r} diverged from sim bitwise")


class TestCrossBackendSpmmProperties:
    @given(problem=spmm_problem(), p=st.integers(min_value=1, max_value=4),
           mode=st.sampled_from(["oblivious", "sparsity_aware"]))
    @settings(**SETTINGS)
    def test_1d_bit_identical(self, problem, p, mode):
        adj, h = problem
        dist = BlockRowDistribution.uniform(adj.shape[0], p)
        results = _run_all_backends(
            DistSparseMatrix(adj, dist), DistDenseMatrix.from_global(h, dist),
            None, "1d", mode, p)
        _assert_bit_identical(results, adj @ h)

    @given(problem=spmm_problem(), c=st.sampled_from([1, 2]),
           mode=st.sampled_from(["oblivious", "sparsity_aware"]))
    @settings(**SETTINGS)
    def test_15d_bit_identical(self, problem, c, mode):
        adj, h = problem
        p = 4
        grid = ProcessGrid(p, c)
        dist = BlockRowDistribution.uniform(adj.shape[0], grid.nrows)
        results = _run_all_backends(
            DistSparseMatrix(adj, dist), DistDenseMatrix.from_global(h, dist),
            grid, "1.5d", mode, p)
        _assert_bit_identical(results, adj @ h)

    @given(problem=spmm_problem(), mode=st.sampled_from(["oblivious",
                                                         "sparsity_aware"]))
    @settings(**SETTINGS)
    def test_2d_bit_identical(self, problem, mode):
        adj, h = problem
        grid = Grid2D(2, 2)
        results = _run_all_backends(
            Dist2DSparseMatrix.uniform(adj, grid), h, grid, "2d", mode, 4)
        _assert_bit_identical(results, adj @ h)


class TestCrossBackendCollectiveProperties:
    """The collectives themselves return bit-identical payloads."""

    @given(p=st.integers(min_value=2, max_value=4),
           shape=st.tuples(st.integers(1, 12), st.integers(1, 6)),
           op=st.sampled_from(["sum", "max", "min"]),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_allreduce_bitwise_equal(self, p, shape, op, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.normal(size=shape) for _ in range(p)]
        reference = None
        for backend in cc.CONFORMANT_BACKENDS:
            with make_communicator(p, backend=backend) as comm:
                out = comm.allreduce([a.copy() for a in arrays], op=op)
            if reference is None:
                reference = out
            else:
                for got, want in zip(out, reference):
                    np.testing.assert_array_equal(got, want)

    @given(p=st.integers(min_value=2, max_value=4),
           n=st.integers(min_value=0, max_value=40),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_alltoallv_bitwise_equal(self, p, n, seed):
        rng = np.random.default_rng(seed)
        send = [[rng.normal(size=rng.integers(0, n + 1)) if i != j else None
                 for j in range(p)] for i in range(p)]
        reference = None
        for backend in cc.CONFORMANT_BACKENDS:
            with make_communicator(p, backend=backend) as comm:
                recv = comm.alltoallv([[None if a is None else a.copy()
                                        for a in row] for row in send])
            if reference is None:
                reference = recv
            else:
                for i in range(p):
                    for j in range(p):
                        if i != j and send[j][i] is not None:
                            np.testing.assert_array_equal(recv[i][j],
                                                          reference[i][j])
