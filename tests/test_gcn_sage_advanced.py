"""Tests for the GraphSAGE reference model and the advanced trainer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gcn import (AdvancedTrainConfig, ReferenceTrainConfig, SAGELayer,
                       SAGEModel, SAGETrainConfig, row_normalize_adjacency,
                       train_advanced, train_reference, train_sage)
from repro.gcn.loss import loss_and_grad
from repro.graphs import community_ring_graph, make_node_data


@pytest.fixture(scope="module")
def dataset():
    adj = community_ring_graph(60, avg_degree=8, n_communities=4,
                               p_external=0.05, seed=0)
    node_data = make_node_data(adj, n_features=10, n_classes=4, seed=0)
    return adj, node_data


# ----------------------------------------------------------------------
# Row-normalised adjacency
# ----------------------------------------------------------------------
class TestRowNormalize:
    def test_rows_sum_to_one(self, dataset):
        adj, _ = dataset
        mean = row_normalize_adjacency(adj)
        sums = np.asarray(mean.sum(axis=1)).ravel()
        deg = np.asarray(adj.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[deg > 0], 1.0)

    def test_self_loops_added(self, dataset):
        adj, _ = dataset
        mean = row_normalize_adjacency(adj, add_self_loops=True)
        assert np.all(mean.diagonal() > 0)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            row_normalize_adjacency(sp.csr_matrix((2, 3)))


# ----------------------------------------------------------------------
# SAGE layer / model
# ----------------------------------------------------------------------
class TestSAGELayer:
    def test_forward_shapes(self, dataset):
        adj, node_data = dataset
        mean = row_normalize_adjacency(adj, add_self_loops=True)
        rng = np.random.default_rng(0)
        layer = SAGELayer(rng.normal(size=(20, 6)) * 0.1)
        cache = layer.forward(mean, node_data.features)
        assert cache.z.shape == (60, 6)
        assert cache.concat.shape == (60, 20)

    def test_weight_shape_validation(self):
        with pytest.raises(ValueError):
            SAGELayer(np.zeros((5, 3)))      # odd first dimension
        with pytest.raises(ValueError):
            SAGELayer(np.zeros(4))

    def test_input_width_validation(self, dataset):
        adj, node_data = dataset
        mean = row_normalize_adjacency(adj)
        layer = SAGELayer(np.zeros((8, 3)))
        with pytest.raises(ValueError):
            layer.forward(mean, node_data.features)

    def test_gradients_match_finite_differences(self, dataset):
        """The analytic weight gradient agrees with a numerical one."""
        adj, node_data = dataset
        mean = row_normalize_adjacency(adj, add_self_loops=True)
        rng = np.random.default_rng(1)
        f_in, f_out = node_data.n_features, 3
        weight = rng.normal(size=(2 * f_in, f_out)) * 0.1
        layer = SAGELayer(weight.copy(), activation="identity")
        labels = node_data.labels
        mask = node_data.train_mask

        def loss_for(w):
            cache = SAGELayer(w, activation="identity").forward(
                mean, node_data.features)
            loss, _ = loss_and_grad(cache.z[:, :f_out], labels % f_out, mask)
            return loss

        cache = layer.forward(mean, node_data.features)
        loss, grad_logits = loss_and_grad(cache.z, labels % f_out, mask)
        grads = layer.backward(mean, cache, grad_logits)

        eps = 1e-6
        for idx in [(0, 0), (3, 1), (2 * f_in - 1, f_out - 1)]:
            w_plus = weight.copy()
            w_plus[idx] += eps
            w_minus = weight.copy()
            w_minus[idx] -= eps
            numeric = (loss_for(w_plus) - loss_for(w_minus)) / (2 * eps)
            assert grads.weight_grad[idx] == pytest.approx(numeric, rel=1e-4,
                                                           abs=1e-7)


class TestSAGEModel:
    def test_layer_dims_validation(self):
        with pytest.raises(ValueError):
            SAGEModel([5])

    def test_weights_have_concat_width(self):
        model = SAGEModel([10, 8, 4], seed=0)
        assert model.weights[0].shape == (20, 8)
        assert model.weights[1].shape == (16, 4)

    def test_training_reduces_loss_and_learns(self, dataset):
        adj, node_data = dataset
        model, history, test_acc = train_sage(
            adj, node_data, SAGETrainConfig(epochs=60, hidden=16,
                                            learning_rate=0.1, seed=0))
        losses = [h[1] for h in history]
        assert losses[-1] < losses[0]
        assert test_acc > 0.5          # planted communities are learnable

    def test_gradient_count_validation(self, dataset):
        model = SAGEModel([10, 4], seed=0)
        with pytest.raises(ValueError):
            model.apply_gradients([np.zeros((20, 4)), np.zeros((8, 4))], 0.1)


# ----------------------------------------------------------------------
# Advanced trainer
# ----------------------------------------------------------------------
class TestAdvancedTrainer:
    def test_default_matches_reference_trainer(self, dataset):
        """With SGD + constant LR + no regularisation, the advanced loop is
        numerically identical to the paper-style reference loop."""
        adj, node_data = dataset
        ref = train_reference(adj, node_data,
                              ReferenceTrainConfig(epochs=10, seed=3))
        adv = train_advanced(adj, node_data,
                             AdvancedTrainConfig(epochs=10, seed=3))
        assert adv.final_loss == pytest.approx(ref.final_loss, rel=1e-12)
        assert adv.test_accuracy == pytest.approx(ref.test_accuracy)

    def test_adam_trains(self, dataset):
        adj, node_data = dataset
        result = train_advanced(adj, node_data, AdvancedTrainConfig(
            epochs=30, optimizer="adam", learning_rate=0.02, seed=0))
        assert result.history[-1].loss < result.history[0].loss
        assert result.test_accuracy > 0.4

    def test_sage_architecture(self, dataset):
        adj, node_data = dataset
        result = train_advanced(adj, node_data, AdvancedTrainConfig(
            architecture="sage", n_layers=2, epochs=30, learning_rate=0.1,
            seed=0))
        assert result.test_accuracy > 0.4

    def test_schedule_is_applied(self, dataset):
        adj, node_data = dataset
        result = train_advanced(adj, node_data, AdvancedTrainConfig(
            epochs=20, schedule="exponential",
            schedule_kwargs=(("gamma", 0.9),), seed=0))
        lrs = [r.learning_rate for r in result.history]
        assert lrs[0] > lrs[-1]

    def test_dropout_and_l2_do_not_break_training(self, dataset):
        adj, node_data = dataset
        result = train_advanced(adj, node_data, AdvancedTrainConfig(
            epochs=20, dropout=0.2, l2=1e-4, seed=0))
        assert np.isfinite(result.final_loss)
        assert result.epochs_run == 20

    def test_early_stopping_triggers(self, dataset):
        adj, node_data = dataset
        result = train_advanced(adj, node_data, AdvancedTrainConfig(
            epochs=200, early_stopping_patience=3, learning_rate=0.05, seed=0))
        assert result.epochs_run < 200
        assert result.stopped_early

    def test_zero_epochs(self, dataset):
        adj, node_data = dataset
        result = train_advanced(adj, node_data,
                                AdvancedTrainConfig(epochs=0, seed=0))
        assert result.epochs_run == 0
        assert np.isnan(result.final_loss)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdvancedTrainConfig(architecture="gat")
        with pytest.raises(ValueError):
            AdvancedTrainConfig(dropout=1.5)
        with pytest.raises(ValueError):
            AdvancedTrainConfig(l2=-0.1)
        with pytest.raises(ValueError):
            AdvancedTrainConfig(n_layers=0)
        with pytest.raises(ValueError):
            AdvancedTrainConfig(early_stopping_patience=-1)
