"""Tests for the abstract Communicator contract (repro.comm.base).

A :class:`FakeCommunicator` implements the ABC with pure data passthrough
while recording every call and its payload volume; running the real SpMM
algorithms against it asserts the *call sequences* and *byte volumes* the
paper's algorithms are supposed to produce, independent of any backend's
timing model.
"""

import numpy as np
import pytest

from repro.comm import (Communicator, available_backends, make_communicator,
                        register_backend)
from repro.comm.base import payload_nbytes, reduce_stack
from repro.comm.threaded import ThreadedCommunicator
from repro.core import (BlockRowDistribution, DistDenseMatrix,
                        DistSparseMatrix, spmm_1d_oblivious,
                        spmm_1d_sparsity_aware)
from repro.graphs import gcn_normalize
from repro.graphs.generators import erdos_renyi_graph


class FakeCommunicator(Communicator):
    """Minimal ABC implementation recording (op, category, nbytes) calls."""

    backend_name = "fake"

    def __init__(self, nranks):
        super().__init__(nranks)
        self.calls = []

    # -- recording helpers -------------------------------------------------
    def _log(self, op, category, nbytes):
        self.calls.append((op, category, int(nbytes)))

    def ops(self, *names):
        return [c for c in self.calls if c[0] in names]

    # -- accounting hooks (record instead of charging clocks) --------------
    def charge_spmm(self, rank, flops, category="local"):
        self._log("charge_spmm", category, 0)
        return 0.0

    def charge_elementwise(self, rank, nelements, category="local"):
        self._log("charge_elementwise", category, 0)
        return 0.0

    # -- collectives: passthrough with simulator-compatible semantics ------
    def alltoallv(self, send, ranks=None, category="alltoall"):
        group = self._resolve_ranks(ranks)
        p = len(group)
        volume = sum(payload_nbytes(send[i][j])
                     for i in range(p) for j in range(p) if i != j)
        self._log("alltoallv", category, volume)
        return [[send[j][i] for j in range(p)] for i in range(p)]

    def broadcast(self, value, root, ranks=None, category="bcast"):
        group = self._resolve_ranks(ranks)
        self._log("broadcast", category,
                  payload_nbytes(value) * (len(group) - 1))
        return [value if r == root else np.array(value, copy=True)
                for r in group]

    def allreduce(self, arrays, ranks=None, op="sum", category="allreduce"):
        group = self._resolve_ranks(ranks)
        self._log("allreduce", category, payload_nbytes(arrays[0]))
        result = reduce_stack(arrays, op)
        return [result.copy() if i > 0 else result
                for i in range(len(group))]

    def allgather(self, arrays, ranks=None, category="allgather"):
        group = self._resolve_ranks(ranks)
        p = len(group)
        self._log("allgather", category,
                  sum(payload_nbytes(a) for a in arrays) * (p - 1))
        return [[np.array(arrays[j], copy=True) if j != i else arrays[i]
                 for j in range(p)] for i in range(p)]

    def reduce(self, arrays, root, ranks=None, op="sum", category="reduce"):
        group = self._resolve_ranks(ranks)
        self._log("reduce", category, payload_nbytes(arrays[0]))
        result = reduce_stack(arrays, op, force_float64=True)
        return [result if r == root else None for r in group]

    def exchange(self, messages, category="p2p", sync_ranks=None):
        volume = sum(payload_nbytes(p) for s, d, p in messages if s != d)
        self._log("exchange", category, volume)
        return {(s, d): p for s, d, p in messages}


def make_problem(n=40, p=4, f=5, seed=0):
    adj = gcn_normalize(erdos_renyi_graph(n, avg_degree=5, seed=seed))
    dist = BlockRowDistribution.uniform(n, p)
    rng = np.random.default_rng(seed)
    h = rng.normal(size=(n, f))
    return (adj, DistSparseMatrix(adj, dist),
            DistDenseMatrix.from_global(h, dist), h)


class TestAbstractContract:
    def test_abc_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Communicator(4)

    def test_partial_implementation_rejected(self):
        class Partial(Communicator):
            def broadcast(self, value, root, ranks=None, category="bcast"):
                return [value]

        with pytest.raises(TypeError):
            Partial(2)

    def test_fake_satisfies_the_abc(self):
        comm = FakeCommunicator(4)
        assert isinstance(comm, Communicator)
        assert comm.nranks == 4
        assert list(comm.ranks()) == [0, 1, 2, 3]

    def test_invalid_nranks_rejected(self):
        with pytest.raises(ValueError):
            FakeCommunicator(0)

    def test_resolve_ranks_validation(self):
        comm = FakeCommunicator(4)
        assert comm._resolve_ranks(None) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            comm._resolve_ranks([0, 0])
        with pytest.raises(ValueError):
            comm._resolve_ranks([5])

    def test_default_charges_are_noops(self):
        class OnlyCollectives(FakeCommunicator):
            charge_spmm = Communicator.charge_spmm
            charge_elementwise = Communicator.charge_elementwise

        comm = OnlyCollectives(2)
        assert comm.charge_spmm(0, 1e6) == 0.0
        assert comm.charge_gemm(0, 1e6) == 0.0
        assert comm.charge_elementwise(1, 10) == 0.0
        assert comm.charge_seconds(1, 0.5) == 0.0
        assert comm.elapsed() == 0.0

    def test_parallel_for_runs_tasks_in_rank_order(self):
        comm = FakeCommunicator(3)
        order = []
        comm.parallel_for([lambda i=i: order.append(i) for i in range(3)])
        assert order == [0, 1, 2]

    def test_parallel_for_validates_task_count(self):
        comm = FakeCommunicator(3)
        with pytest.raises(ValueError):
            comm.parallel_for([lambda: None], ranks=[0, 1])


class TestPayloadNbytes:
    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_array_bytes(self):
        assert payload_nbytes(np.zeros((3, 4))) == 3 * 4 * 8

    def test_scalar_and_list(self):
        assert payload_nbytes(np.float64(1.0)) == 8
        assert payload_nbytes([1, 2, 3]) > 0


class TestReduceStack:
    def test_sum_matches_numpy(self):
        arrays = [np.arange(6.0).reshape(2, 3) * k for k in range(4)]
        np.testing.assert_array_equal(reduce_stack(arrays, "sum"),
                                      np.stack(arrays).sum(axis=0))

    def test_unsupported_op(self):
        with pytest.raises(ValueError):
            reduce_stack([np.zeros(2)], "prod")


class TestCallSequences:
    """The paper's algorithms drive the expected collective sequences."""

    def test_oblivious_1d_is_p_broadcasts(self):
        _, dm, dh, _ = make_problem(p=4)
        comm = FakeCommunicator(4)
        spmm_1d_oblivious(dm, dh, comm)
        collectives = comm.ops("broadcast", "alltoallv", "exchange")
        assert [c[0] for c in collectives] == ["broadcast"] * 4
        assert all(c[1] == "bcast" for c in collectives)

    def test_sparsity_aware_1d_is_one_alltoallv(self):
        _, dm, dh, _ = make_problem(p=4)
        comm = FakeCommunicator(4)
        spmm_1d_sparsity_aware(dm, dh, comm)
        collectives = comm.ops("broadcast", "alltoallv", "exchange")
        assert [c[0] for c in collectives] == ["alltoallv"]
        assert collectives[0][1] == "alltoall"
        # Packing happens before the exchange, multiplies after it.
        kinds = [c[0] for c in comm.calls]
        first_mult = kinds.index("charge_spmm")
        assert kinds.index("alltoallv") < first_mult
        assert all(k != "charge_elementwise"
                   for k in kinds[kinds.index("alltoallv"):])

    def test_recorded_alltoallv_volume_matches_nnzcols(self):
        _, dm, dh, _ = make_problem(p=4, f=5)
        comm = FakeCommunicator(4)
        spmm_1d_sparsity_aware(dm, dh, comm)
        expected = 8 * 5 * sum(
            dm.nnz_cols(i, j).size
            for i in range(4) for j in range(4) if i != j)
        (_, _, volume), = comm.ops("alltoallv")
        assert volume == expected

    def test_broadcast_volume_dominates_sparsity_aware(self):
        """Oblivious moves >= the sparsity-aware volume (paper Sec. 4)."""
        _, dm, dh, _ = make_problem(p=4, f=5)
        fake_ob, fake_sa = FakeCommunicator(4), FakeCommunicator(4)
        spmm_1d_oblivious(dm, dh, fake_ob)
        spmm_1d_sparsity_aware(dm, dh, fake_sa)
        vol_ob = sum(c[2] for c in fake_ob.ops("broadcast"))
        vol_sa = sum(c[2] for c in fake_sa.ops("alltoallv"))
        assert vol_ob >= vol_sa

    def test_results_identical_to_real_backends(self):
        adj, dm, dh, h = make_problem(p=4)
        z_fake = spmm_1d_sparsity_aware(dm, dh, FakeCommunicator(4))
        z_sim = spmm_1d_sparsity_aware(dm, dh, make_communicator(4))
        np.testing.assert_array_equal(z_fake.to_global(), z_sim.to_global())
        np.testing.assert_allclose(z_fake.to_global(), adj @ h, atol=1e-10)


class TestFactory:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "sim" in names and "threaded" in names

    def test_make_sim(self):
        comm = make_communicator(4, backend="sim", machine="laptop")
        assert isinstance(comm, Communicator)
        assert comm.backend_name == "sim"
        assert type(comm).__name__ == "SimCommunicator"
        assert comm.machine.name == "laptop"

    def test_make_threaded_accepts_machine_kwarg(self):
        comm = make_communicator(2, backend="threaded", machine="laptop")
        try:
            assert isinstance(comm, ThreadedCommunicator)
            assert comm.backend_name == "threaded"
        finally:
            comm.close()

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(ValueError, match="sim"):
            make_communicator(2, backend="carrier-pigeon")

    def test_register_custom_backend(self):
        register_backend("fake-test", FakeCommunicator)
        try:
            comm = make_communicator(3, backend="fake-test")
            assert isinstance(comm, FakeCommunicator)
            with pytest.raises(ValueError):
                register_backend("fake-test", FakeCommunicator)
        finally:
            from repro.comm.factory import BACKENDS
            BACKENDS.pop("fake-test", None)

    def test_config_rejects_unknown_backend(self):
        from repro.core import DistTrainConfig
        with pytest.raises(ValueError, match="backend"):
            DistTrainConfig(backend="nope")


class TestThreadedBackendContract:
    """The real backend honours the same contract as the simulator."""

    @pytest.fixture()
    def comm(self):
        comm = ThreadedCommunicator(4)
        yield comm
        comm.close()

    def test_broadcast_values_and_copies(self, comm):
        value = np.arange(6.0).reshape(2, 3)
        out = comm.broadcast(value, root=1)
        assert out[1] is value
        for i in (0, 2, 3):
            np.testing.assert_array_equal(out[i], value)
            assert out[i] is not value

    def test_allreduce_matches_sim_bitwise(self, comm):
        rng = np.random.default_rng(3)
        arrays = [rng.normal(size=(5, 2)) for _ in range(4)]
        sim = make_communicator(4, backend="sim")
        got = comm.allreduce([a.copy() for a in arrays])
        want = sim.allreduce([a.copy() for a in arrays])
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_alltoallv_delivers_transpose(self, comm):
        send = [[np.full((1, 1), 10 * i + j) if i != j else None
                 for j in range(4)] for i in range(4)]
        recv = comm.alltoallv(send)
        for i in range(4):
            for j in range(4):
                if i == j:
                    assert recv[i][j] is None
                else:
                    assert recv[i][j][0, 0] == 10 * j + i

    def test_exchange_and_events(self, comm):
        msgs = [(0, 1, np.ones(3)), (2, 3, np.ones(5)), (1, 1, np.ones(2))]
        delivered = comm.exchange(msgs)
        assert set(delivered) == {(0, 1), (2, 3), (1, 1)}
        # Only the two off-diagonal messages are recorded as traffic.
        assert comm.events.message_count() == 2
        assert comm.events.total_bytes() == 8 * (3 + 5)

    def test_parallel_for_runs_on_worker_threads(self, comm):
        import threading
        seen = {}

        def make(i):
            def task():
                seen[i] = threading.current_thread().name
            return task

        comm.parallel_for([make(i) for i in range(4)])
        assert sorted(seen) == [0, 1, 2, 3]
        assert len(set(seen.values())) == 4
        assert all(name.startswith("comm-rank-") for name in seen.values())

    def test_worker_exception_propagates(self, comm):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            comm.parallel_for([boom] + [lambda: None] * 3)

    def test_wall_clock_timeline_advances(self, comm):
        comm.parallel_for([lambda: None] * 4)
        comm.broadcast(np.ones(4), root=0)
        assert comm.elapsed() > 0.0
        assert "bcast" in comm.breakdown()

    def test_timeout_is_configurable(self):
        import time
        comm = ThreadedCommunicator(2, timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError, match="did not finish"):
                comm.parallel_for([lambda: time.sleep(1.0), lambda: None])
        finally:
            comm.close()
        with pytest.raises(ValueError):
            ThreadedCommunicator(2, timeout_s=0.0)

    def test_closed_communicator_rejects_work(self):
        comm = ThreadedCommunicator(2)
        comm.parallel_for([lambda: None] * 2)
        comm.close()
        with pytest.raises(RuntimeError):
            comm.parallel_for([lambda: None] * 2)
