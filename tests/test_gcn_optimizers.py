"""Tests for optimisers, learning-rate schedules and regularisation."""

import numpy as np
import pytest

from repro.gcn import (Adam, AdaGrad, ConstantLR, CosineAnnealing, Dropout,
                       EarlyStopping, ExponentialDecay, OPTIMIZERS, RMSProp,
                       SCHEDULES, SGD, StepDecay, WarmupWrapper, get_optimizer,
                       get_schedule, l2_penalty, l2_penalty_grads)


def quadratic_params(seed=0):
    """Two parameter blocks for minimising sum ||p||^2 / 2 (grad = p)."""
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(3, 4)), rng.normal(size=(4, 2))]


def run_quadratic(optimizer, steps=200, seed=0):
    params = quadratic_params(seed)
    for _ in range(steps):
        optimizer.step(params, [p.copy() for p in params])
    return params


# ----------------------------------------------------------------------
# Optimisers
# ----------------------------------------------------------------------
class TestSGD:
    def test_plain_sgd_matches_manual_update(self):
        params = [np.array([[1.0, 2.0]])]
        SGD(learning_rate=0.1).step(params, [np.array([[0.5, -1.0]])])
        np.testing.assert_allclose(params[0], [[0.95, 2.1]])

    def test_momentum_accelerates_on_quadratic(self):
        plain = run_quadratic(SGD(learning_rate=0.05), steps=50)
        momentum = run_quadratic(SGD(learning_rate=0.05, momentum=0.9), steps=50)
        assert sum(np.abs(p).sum() for p in momentum) < \
            sum(np.abs(p).sum() for p in plain)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=0.0, nesterov=True)

    def test_weight_decay_shrinks_weights(self):
        params = [np.array([[10.0]])]
        SGD(learning_rate=0.1, weight_decay=0.5).step(params, [np.zeros((1, 1))])
        assert params[0][0, 0] < 10.0

    def test_reset_clears_velocity(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params = quadratic_params()
        opt.step(params, [p.copy() for p in params])
        opt.reset()
        assert opt.step_count == 0
        assert opt._velocity is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(weight_decay=-1.0)


@pytest.mark.parametrize("cls,kwargs", [
    (SGD, {"learning_rate": 0.1}),
    (SGD, {"learning_rate": 0.05, "momentum": 0.9}),
    (SGD, {"learning_rate": 0.05, "momentum": 0.9, "nesterov": True}),
    (Adam, {"learning_rate": 0.1}),
    (AdaGrad, {"learning_rate": 0.5}),
    (RMSProp, {"learning_rate": 0.05}),
])
class TestConvergence:
    def test_minimises_quadratic(self, cls, kwargs):
        start = sum(np.abs(p).sum() for p in quadratic_params())
        final = sum(np.abs(p).sum() for p in run_quadratic(cls(**kwargs)))
        assert final < 0.1 * start


class TestAdam:
    def test_bias_correction_first_step(self):
        """After one step with gradient g the Adam update is ~ -lr * sign(g)."""
        params = [np.array([[2.0, -3.0]])]
        opt = Adam(learning_rate=0.1)
        opt.step(params, [np.array([[1.0, -1.0]])])
        np.testing.assert_allclose(params[0], [[1.9, -2.9]], atol=1e-6)

    def test_state_shapes(self):
        opt = Adam()
        params = quadratic_params()
        opt.step(params, [p.copy() for p in params])
        assert all(m.shape == p.shape for m, p in zip(opt._m, params))

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
        with pytest.raises(ValueError):
            Adam(eps=0.0)


class TestOptimizerBase:
    def test_shape_mismatch_rejected(self):
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step([np.zeros((2, 2))], [np.zeros((3, 3))])

    def test_count_mismatch_rejected(self):
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step([np.zeros((2, 2))], [np.zeros((2, 2)), np.zeros((2, 2))])

    def test_registry(self):
        for name in ("sgd", "adam", "adagrad", "rmsprop"):
            assert name in OPTIMIZERS
            assert get_optimizer(name).name == name
        with pytest.raises(KeyError):
            get_optimizer("lbfgs")

    def test_state_summary(self):
        opt = get_optimizer("adam", learning_rate=0.2)
        summary = opt.state_summary()
        assert summary["learning_rate"] == pytest.approx(0.2)
        assert summary["step_count"] == 0


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.05)
        assert sched(0) == sched(99) == 0.05

    def test_step_decay(self):
        sched = StepDecay(0.1, step_size=10, factor=0.5)
        assert sched(0) == pytest.approx(0.1)
        assert sched(10) == pytest.approx(0.05)
        assert sched(25) == pytest.approx(0.025)

    def test_exponential_decay_monotone(self):
        sched = ExponentialDecay(0.1, gamma=0.9)
        values = [sched(e) for e in range(20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_cosine_annealing_endpoints(self):
        sched = CosineAnnealing(0.1, total_epochs=50, min_lr=1e-3)
        assert sched(0) == pytest.approx(0.1)
        assert sched(50) == pytest.approx(1e-3)
        assert sched(200) == pytest.approx(1e-3)

    def test_warmup_then_inner(self):
        sched = WarmupWrapper(ConstantLR(0.1), warmup_epochs=4)
        assert sched(0) == pytest.approx(0.025)
        assert sched(3) == pytest.approx(0.1)
        assert sched(10) == pytest.approx(0.1)

    def test_registry(self):
        for name in ("constant", "step", "exponential", "cosine"):
            assert name in SCHEDULES
            assert get_schedule(name, 0.05)(0) > 0
        with pytest.raises(KeyError):
            get_schedule("cyclic", 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            StepDecay(0.1, step_size=0)
        with pytest.raises(ValueError):
            ExponentialDecay(0.1, gamma=1.5)
        with pytest.raises(ValueError):
            CosineAnnealing(0.1, min_lr=0.5)
        with pytest.raises(ValueError):
            ConstantLR(0.1)(-1)


# ----------------------------------------------------------------------
# Regularisation
# ----------------------------------------------------------------------
class TestDropout:
    def test_eval_mode_is_identity(self):
        x = np.random.default_rng(0).normal(size=(10, 4))
        drop = Dropout(0.5, seed=1)
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_zero_rate_is_identity(self):
        x = np.ones((5, 5))
        np.testing.assert_array_equal(Dropout(0.0).forward(x), x)

    def test_expected_value_preserved(self):
        x = np.ones((2000, 10))
        out = Dropout(0.3, seed=0).forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        # Survivors are scaled up, the rest are exactly zero.
        nonzero = out[out != 0]
        np.testing.assert_allclose(nonzero, 1.0 / 0.7, rtol=1e-12)

    def test_backward_uses_same_mask(self):
        x = np.ones((50, 4))
        drop = Dropout(0.4, seed=2)
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal((out == 0), (grad == 0))

    def test_backward_shape_check(self):
        drop = Dropout(0.4, seed=2)
        drop.forward(np.ones((5, 5)), training=True)
        with pytest.raises(ValueError):
            drop.backward(np.ones((4, 4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestL2:
    def test_penalty_value_and_gradient(self):
        weights = [np.array([[1.0, 2.0]]), np.array([[3.0]])]
        assert l2_penalty(weights, 0.1) == pytest.approx(0.05 * (1 + 4 + 9))
        grads = l2_penalty_grads(weights, 0.1)
        np.testing.assert_allclose(grads[0], [[0.1, 0.2]])

    def test_zero_coefficient(self):
        assert l2_penalty([np.ones((2, 2))], 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            l2_penalty([np.ones((1, 1))], -1.0)
        with pytest.raises(ValueError):
            l2_penalty_grads([np.ones((1, 1))], -1.0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=3, mode="max")
        assert not stopper.update(0, 0.5)
        assert not stopper.update(1, 0.4)
        assert not stopper.update(2, 0.4)
        assert stopper.update(3, 0.4)
        assert stopper.stopped_early
        assert stopper.best == pytest.approx(0.5)
        assert stopper.best_epoch == 0

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, mode="max")
        stopper.update(0, 0.5)
        stopper.update(1, 0.4)
        assert not stopper.update(2, 0.6)
        assert stopper.best_epoch == 2

    def test_min_mode(self):
        stopper = EarlyStopping(patience=2, mode="min")
        stopper.update(0, 1.0)
        assert not stopper.update(1, 0.5)
        assert stopper.best == pytest.approx(0.5)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1, mode="max")
        stopper.update(0, 0.5)
        assert stopper.update(1, 0.55)  # not enough improvement

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)
        with pytest.raises(ValueError):
            EarlyStopping(mode="avg")
