"""Tests for the reference GCN building blocks (activations, init, loss,
metrics)."""

import numpy as np
import pytest

from repro.gcn import (accuracy, confusion_counts, f1_macro, glorot_normal,
                       glorot_uniform, init_weights, layer_seeds,
                       loss_and_grad, masked_accuracy, masked_cross_entropy,
                       masked_cross_entropy_grad, softmax)
from repro.gcn.activations import get_activation, identity, relu, relu_grad, sigmoid


class TestActivations:
    def test_relu_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 3.0])

    def test_relu_grad_is_indicator(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu_grad(x), [0.0, 0.0, 1.0])

    def test_identity(self):
        x = np.array([1.0, -1.0])
        np.testing.assert_array_equal(identity(x), x)

    def test_sigmoid_bounds_and_symmetry(self):
        x = np.array([-50.0, 0.0, 50.0])
        s = sigmoid(x)
        assert 0 <= s.min() and s.max() <= 1
        assert s[1] == pytest.approx(0.5)

    def test_sigmoid_grad_numerical(self):
        from repro.gcn.activations import sigmoid_grad
        x = np.array([0.3, -0.7])
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid_grad(x), numeric, atol=1e-5)

    def test_get_activation_registry(self):
        act, grad = get_activation("relu")
        assert act is relu
        with pytest.raises(KeyError):
            get_activation("gelu")


class TestInit:
    def test_glorot_uniform_bounds(self):
        w = glorot_uniform(100, 50, seed=0)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= limit

    def test_glorot_normal_scale(self):
        w = glorot_normal(2000, 2000, seed=0)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 4000), rel=0.1)

    def test_deterministic(self):
        np.testing.assert_array_equal(glorot_uniform(8, 4, seed=3),
                                      glorot_uniform(8, 4, seed=3))
        assert not np.array_equal(glorot_uniform(8, 4, seed=3),
                                  glorot_uniform(8, 4, seed=4))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            glorot_uniform(0, 4, seed=0)

    def test_layer_seeds_distinct(self):
        seeds = layer_seeds(7, 4)
        assert len(set(seeds)) == 4

    def test_init_weights_shapes(self):
        weights = init_weights([10, 16, 16, 3], seed=0)
        assert [w.shape for w in weights] == [(10, 16), (16, 16), (16, 3)]

    def test_init_weights_validation(self):
        with pytest.raises(ValueError):
            init_weights([5], seed=0)
        with pytest.raises(KeyError):
            init_weights([5, 2], scheme="he")


class TestLoss:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(7, 5))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert probs.min() >= 0

    def test_softmax_shift_invariance(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0),
                                   atol=1e-12)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        assert masked_cross_entropy(logits, labels) < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 3))
        labels = np.array([0, 1, 2, 0])
        assert masked_cross_entropy(logits, labels) == pytest.approx(np.log(3))

    def test_mask_restricts_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([1, 1])  # first prediction is wrong
        mask = np.array([False, True])
        assert masked_cross_entropy(logits, labels, mask) < 1e-6

    def test_grad_zero_outside_mask(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        mask = np.array([True, False, True, False, False])
        grad = masked_cross_entropy_grad(logits, labels, mask)
        assert np.all(grad[~mask] == 0)
        assert np.any(grad[mask] != 0)

    def test_grad_matches_numerical(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        mask = np.array([True, True, False, True])
        loss, grad = loss_and_grad(logits, labels, mask)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                bumped = logits.copy()
                bumped[i, j] += eps
                numeric = (masked_cross_entropy(bumped, labels, mask) - loss) / eps
                assert grad[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_validation_errors(self):
        logits = np.zeros((3, 2))
        with pytest.raises(ValueError):
            masked_cross_entropy(logits, np.array([0, 1]))           # length
        with pytest.raises(ValueError):
            masked_cross_entropy(logits, np.array([0, 1, 5]))        # range
        with pytest.raises(ValueError):
            masked_cross_entropy(logits, np.array([0, 1, 1]),
                                 np.zeros(3, dtype=bool))            # empty mask
        with pytest.raises(ValueError):
            masked_cross_entropy(np.zeros(3), np.array([0, 1, 1]))   # 1-D logits


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == \
            pytest.approx(2 / 3)
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_masked_accuracy(self):
        preds = np.array([0, 1, 1, 0])
        labels = np.array([0, 1, 0, 1])
        mask = np.array([True, True, False, False])
        assert masked_accuracy(preds, labels, mask) == 1.0
        assert masked_accuracy(preds, labels, np.zeros(4, dtype=bool)) == 0.0

    def test_confusion_counts(self):
        preds = np.array([0, 1, 1])
        labels = np.array([0, 1, 0])
        mat = confusion_counts(preds, labels, n_classes=2)
        assert mat[0, 0] == 1 and mat[0, 1] == 1 and mat[1, 1] == 1

    def test_f1_macro_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert f1_macro(labels, labels) == pytest.approx(1.0)

    def test_f1_macro_ignores_absent_classes(self):
        preds = np.array([0, 0])
        labels = np.array([0, 0])
        assert f1_macro(preds, labels, n_classes=5) == pytest.approx(1.0)
