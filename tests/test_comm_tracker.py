"""Tests for repro.comm.tracker (CommStats / VolumeStats)."""

import numpy as np
import pytest

from repro.comm import make_communicator
from repro.comm.tracker import VolumeStats, volume_stats_from_send_bytes


class TestVolumeStats:
    def test_from_send_bytes_basic(self):
        stats = volume_stats_from_send_bytes(np.array([100, 300]))
        assert stats.total_bytes == 400
        assert stats.avg_bytes_per_rank == 200
        assert stats.max_bytes_per_rank == 300
        assert stats.min_bytes_per_rank == 100
        assert stats.imbalance_pct == pytest.approx(50.0)

    def test_zero_volume_has_zero_imbalance(self):
        stats = volume_stats_from_send_bytes(np.zeros(4, dtype=np.int64))
        assert stats.imbalance_pct == 0.0

    def test_megabyte_helpers_and_dict(self):
        stats = volume_stats_from_send_bytes(np.array([2_000_000, 2_000_000]))
        assert stats.avg_megabytes == pytest.approx(2.0)
        assert stats.max_megabytes == pytest.approx(2.0)
        d = stats.as_dict()
        assert set(d) == {"total_bytes", "avg_bytes_per_rank",
                          "max_bytes_per_rank", "min_bytes_per_rank",
                          "imbalance_pct"}


class TestCommStats:
    def _comm_with_traffic(self):
        comm = make_communicator(3)
        send = [[None if i == j else np.ones(4 * (i + 1)) for j in range(3)]
                for i in range(3)]
        comm.alltoallv(send, category="alltoall")
        comm.broadcast(np.ones(10), root=0, category="bcast")
        comm.charge_spmm(0, 1e9, category="local")
        return comm

    def test_send_and_recv_volumes(self):
        comm = self._comm_with_traffic()
        send = comm.stats.send_volume()
        recv = comm.stats.recv_volume()
        assert send.total_bytes == recv.total_bytes
        assert send.max_bytes_per_rank >= send.avg_bytes_per_rank

    def test_category_filtering(self):
        comm = self._comm_with_traffic()
        assert comm.stats.total_bytes("bcast") == 2 * 10 * 8
        assert comm.stats.total_bytes("alltoall") > 0
        assert comm.stats.total_bytes() == \
            comm.stats.total_bytes("bcast") + comm.stats.total_bytes("alltoall")

    def test_traffic_matrix_and_max_pairwise(self):
        comm = self._comm_with_traffic()
        mat = comm.stats.traffic_matrix()
        assert mat.shape == (3, 3)
        assert comm.stats.max_pairwise_bytes() == mat.max()

    def test_breakdown_and_time_split(self):
        comm = self._comm_with_traffic()
        br = comm.stats.breakdown()
        assert "local" in br and "alltoall" in br and "bcast" in br
        assert comm.stats.compute_seconds() == pytest.approx(br["local"])
        assert comm.stats.communication_seconds() == \
            pytest.approx(br["alltoall"] + br["bcast"])

    def test_summary_keys(self):
        comm = self._comm_with_traffic()
        summary = comm.stats.summary()
        for key in ("elapsed_s", "total_MB", "avg_MB_per_rank",
                    "max_MB_per_rank", "imbalance_pct", "messages"):
            assert key in summary
        assert summary["messages"] == len(comm.events)
