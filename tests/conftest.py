"""Shared fixtures for the test suite.

Graphs used in tests are deliberately tiny (tens to a few hundred
vertices) so the whole suite runs in seconds; the benchmark suite exercises
the larger scaled datasets.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm import Communicator, laptop, make_communicator
from repro.core import BlockRowDistribution, DistDenseMatrix, DistSparseMatrix
from repro.graphs import (gcn_normalize, load_dataset, make_node_data,
                          community_ring_graph, erdos_renyi_graph)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "conformance: cross-backend communicator conformance/property "
        "matrix (run standalone with `pytest -m conformance`)")


@pytest.fixture(autouse=True)
def _isolated_plan_cache(tmp_path, monkeypatch):
    """Point the autotuning planner's default cache at a per-test file so
    tests never read or write the developer's real ~/.cache plan cache
    (auto-resolution consults it read-only by default)."""
    monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path / "plan_cache.json"))


@pytest.fixture(autouse=True)
def _isolated_calibration(tmp_path, monkeypatch):
    """Point the planner's calibration file at a per-test path so tests
    score with the shipped default overhead table, never the developer's
    measured ~/.cache calibration (repro calibrate)."""
    monkeypatch.setenv("REPRO_CALIBRATION",
                       str(tmp_path / "calibration.json"))


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_graph() -> sp.csr_matrix:
    """A 40-vertex random graph with a fixed seed (symmetric, no loops)."""
    return erdos_renyi_graph(40, avg_degree=6, seed=7)


@pytest.fixture(scope="session")
def community_graph() -> sp.csr_matrix:
    """A 96-vertex graph with clear community structure."""
    return community_ring_graph(96, avg_degree=10, n_communities=8,
                                p_external=0.05, seed=3)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny 'reddit' stand-in with few features/classes (fast training)."""
    return load_dataset("reddit", scale=0.05, n_features=12, n_classes=4,
                        seed=11)


@pytest.fixture(scope="session")
def medium_dataset():
    """A slightly larger dataset for distributed-training tests."""
    return load_dataset("amazon", scale=0.05, n_features=20, n_classes=5,
                        seed=5)


# ----------------------------------------------------------------------
# Distributed containers
# ----------------------------------------------------------------------
@pytest.fixture()
def comm4() -> Communicator:
    return make_communicator(4, machine="perlmutter")


@pytest.fixture()
def comm8() -> Communicator:
    return make_communicator(8, machine="perlmutter")


@pytest.fixture()
def dist4(small_graph):
    """(DistSparseMatrix, DistDenseMatrix, dense H) over 4 uniform blocks."""
    matrix = gcn_normalize(small_graph)
    dist = BlockRowDistribution.uniform(matrix.shape[0], 4)
    rng = np.random.default_rng(0)
    h = rng.normal(size=(matrix.shape[0], 6))
    return (DistSparseMatrix(matrix, dist),
            DistDenseMatrix.from_global(h, dist),
            matrix, h)
