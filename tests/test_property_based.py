"""Property-based tests (hypothesis) for the core data structures and
invariants.

These cover the properties the whole reproduction rests on:

* the sparsity-aware SpMM is exact for arbitrary sparse matrices, block
  distributions and feature widths;
* the sparsity-aware algorithm never communicates more than the oblivious
  one, and its volume equals the NnzCols prediction;
* partition metrics are internally consistent for arbitrary partitions;
* the volume-refinement bookkeeping stays consistent under arbitrary move
  sequences;
* the collective cost formulas are monotone in message size.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm import make_communicator, perlmutter
from repro.comm.collectives import allreduce_time, broadcast_time
from repro.core import (BlockRowDistribution, DistDenseMatrix, DistSparseMatrix,
                        predicted_bytes_per_spmm, spmm_1d_oblivious,
                        spmm_1d_sparsity_aware)
from repro.partition import communication_volumes_1d, edgecut
from repro.partition.refine import edgecut_refine, weighted_edgecut
from repro.partition.volume_refine import VolumeState

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def sparse_graph(draw, max_n=40):
    """Random symmetric sparse matrix with zero diagonal."""
    n = draw(st.integers(min_value=4, max_value=max_n))
    density = draw(st.floats(min_value=0.02, max_value=0.3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = sp.random(n, n, density=density, random_state=rng, format="csr")
    mat = mat + mat.T
    mat.setdiag(0)
    mat.eliminate_zeros()
    return mat.tocsr()


@st.composite
def graph_with_blocks(draw):
    """A graph plus a random block-row distribution and feature width."""
    adj = draw(sparse_graph())
    n = adj.shape[0]
    nblocks = draw(st.integers(min_value=1, max_value=min(6, n)))
    f = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=1000))
    # Random positive block sizes summing to n.
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.choice(np.arange(1, n), size=nblocks - 1,
                              replace=False)) if nblocks > 1 else np.array([], int)
    sizes = np.diff(np.concatenate([[0], cuts, [n]]))
    return adj, sizes, f, seed


@st.composite
def graph_with_partition(draw):
    adj = draw(sparse_graph())
    n = adj.shape[0]
    nparts = draw(st.integers(min_value=1, max_value=min(6, n)))
    seed = draw(st.integers(min_value=0, max_value=1000))
    parts = np.random.default_rng(seed).integers(0, nparts, size=n)
    return adj, parts, nparts


# ----------------------------------------------------------------------
# Distributed SpMM properties
# ----------------------------------------------------------------------
class TestSpMMProperties:
    @given(problem=graph_with_blocks())
    @settings(**SETTINGS)
    def test_sparsity_aware_spmm_is_exact(self, problem):
        adj, sizes, f, seed = problem
        dist = BlockRowDistribution(sizes)
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(adj.shape[0], f))
        dm = DistSparseMatrix(adj, dist)
        dh = DistDenseMatrix.from_global(h, dist)
        comm = make_communicator(dist.nblocks)
        out = spmm_1d_sparsity_aware(dm, dh, comm)
        np.testing.assert_allclose(out.to_global(), adj @ h, atol=1e-9)

    @given(problem=graph_with_blocks())
    @settings(**SETTINGS)
    def test_sparsity_aware_never_communicates_more(self, problem):
        adj, sizes, f, seed = problem
        dist = BlockRowDistribution(sizes)
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(adj.shape[0], f))
        dm = DistSparseMatrix(adj, dist)
        dh = DistDenseMatrix.from_global(h, dist)
        comm_sa = make_communicator(dist.nblocks)
        comm_ob = make_communicator(dist.nblocks)
        spmm_1d_sparsity_aware(dm, dh, comm_sa)
        spmm_1d_oblivious(dm, dh, comm_ob)
        assert comm_sa.stats.total_bytes() <= comm_ob.stats.total_bytes()

    @given(problem=graph_with_blocks())
    @settings(**SETTINGS)
    def test_measured_volume_equals_prediction(self, problem):
        adj, sizes, f, seed = problem
        dist = BlockRowDistribution(sizes)
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(adj.shape[0], f))
        dm = DistSparseMatrix(adj, dist)
        dh = DistDenseMatrix.from_global(h, dist)
        comm = make_communicator(dist.nblocks)
        spmm_1d_sparsity_aware(dm, dh, comm)
        predicted = predicted_bytes_per_spmm(dm, f, sparsity_aware=True)
        measured = comm.events.bytes_sent_by_rank(dist.nblocks,
                                                  category="alltoall")
        np.testing.assert_array_equal(measured, predicted)


# ----------------------------------------------------------------------
# Partition metric properties
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(problem=graph_with_partition())
    @settings(**SETTINGS)
    def test_volume_consistency(self, problem):
        adj, parts, nparts = problem
        vol = communication_volumes_1d(adj, parts, nparts)
        assert vol.send_volume.sum() == vol.recv_volume.sum() == vol.total
        assert np.all(vol.send_volume >= 0)
        assert np.all(np.diag(vol.pairwise) == 0)
        assert vol.total <= 2 * edgecut(adj, parts)
        # Each part's send volume is bounded by (its vertices) x (nparts-1).
        sizes = np.bincount(parts, minlength=nparts)
        assert np.all(vol.send_volume <= sizes * max(0, nparts - 1))

    @given(problem=graph_with_partition())
    @settings(**SETTINGS)
    def test_refinement_never_increases_edgecut(self, problem):
        # The refiner's move gain is computed on edge *weights*, so the
        # invariant is on the weighted cut; the unweighted edge count can
        # legitimately grow when a heavy edge is traded for several light
        # ones (hypothesis found such a graph).
        adj, parts, nparts = problem
        before = weighted_edgecut(adj, parts)
        refined, _ = edgecut_refine(adj, parts, nparts, balance_factor=1.5,
                                    max_passes=3, seed=0)
        assert weighted_edgecut(adj, refined) <= before + 1e-9
        # Still a valid partition vector.
        assert refined.shape == parts.shape
        assert refined.min() >= 0 and refined.max() < nparts

    @given(problem=graph_with_partition(),
           moves=st.lists(st.tuples(st.integers(0, 10**6),
                                    st.integers(0, 10**6)),
                          min_size=1, max_size=8))
    @settings(**SETTINGS)
    def test_volume_state_consistent_under_random_moves(self, problem, moves):
        adj, parts, nparts = problem
        if nparts < 2:
            return
        csr = adj.tocsr()
        state = VolumeState.build(csr, parts, nparts, np.ones(adj.shape[0]))
        for raw_v, raw_q in moves:
            v = raw_v % adj.shape[0]
            q = raw_q % nparts
            if q == state.parts[v]:
                continue
            delta = state.move_deltas(csr.indptr, csr.indices, v, q)
            state.apply_move(csr.indptr, csr.indices, v, q,
                             np.ones(adj.shape[0]), delta)
        rebuilt = VolumeState.build(csr, state.parts, nparts,
                                    np.ones(adj.shape[0]))
        np.testing.assert_array_equal(state.send_volume, rebuilt.send_volume)
        np.testing.assert_array_equal(state.recv_volume, rebuilt.recv_volume)
        np.testing.assert_array_equal(state.send_count, rebuilt.send_count)


# ----------------------------------------------------------------------
# Cost model properties
# ----------------------------------------------------------------------
class TestCostModelProperties:
    @given(nbytes=st.integers(min_value=1, max_value=10**9),
           extra=st.integers(min_value=1, max_value=10**6),
           group=st.integers(min_value=2, max_value=64))
    @settings(**SETTINGS)
    def test_collective_costs_monotone_in_bytes(self, nbytes, extra, group):
        machine = perlmutter()
        ranks = list(range(group))
        assert broadcast_time(machine, ranks, nbytes + extra) >= \
            broadcast_time(machine, ranks, nbytes)
        assert allreduce_time(machine, ranks, nbytes + extra) >= \
            allreduce_time(machine, ranks, nbytes)

    @given(nbytes=st.integers(min_value=0, max_value=10**8))
    @settings(**SETTINGS)
    def test_costs_are_non_negative(self, nbytes):
        machine = perlmutter()
        assert broadcast_time(machine, [0, 1, 2], nbytes) >= 0.0
        assert allreduce_time(machine, [0, 5, 9], nbytes) >= 0.0


# ----------------------------------------------------------------------
# Simulator conservation properties
# ----------------------------------------------------------------------
class TestSimulatorProperties:
    @given(sizes=st.lists(st.integers(min_value=0, max_value=64),
                          min_size=4, max_size=4),
           f=st.integers(min_value=1, max_value=6))
    @settings(**SETTINGS)
    def test_alltoallv_conserves_bytes(self, sizes, f):
        """Total bytes logged equal the bytes handed to the exchange, and
        every payload is delivered unchanged."""
        p = 2
        comm = make_communicator(p)
        rng = np.random.default_rng(0)
        send = [[None, rng.normal(size=(sizes[0], f))],
                [rng.normal(size=(sizes[1], f)), None]]
        recv = comm.alltoallv(send)
        expected = sum(arr.nbytes for row in send for arr in row
                       if arr is not None and arr.size)
        assert comm.stats.total_bytes() == expected
        if send[1][0] is not None and send[1][0].size:
            np.testing.assert_array_equal(recv[0][1], send[1][0])
