"""Setuptools entry point.

A classic ``setup.py`` is kept alongside ``pyproject.toml`` so that
``pip install -e .`` works in fully offline environments (no wheel /
build-isolation downloads required for a legacy editable install).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Sparsity-aware communication for distributed GNN training "
                 "(ICPP'24 reproduction)"),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
